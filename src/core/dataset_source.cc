#include "core/dataset_source.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/table.h"

namespace reds {

Result<Dataset> ReadAll(DatasetSource* source, int block_rows) {
  Dataset out(source->num_cols());
  const int64_t hint = source->num_rows_hint();
  if (hint > 0) out.Reserve(static_cast<int>(hint));
  Status reset = source->Reset();
  if (!reset.ok()) return reset;
  for (;;) {
    Result<RowBlock> block = source->NextBlock(block_rows);
    if (!block.ok()) return block.status();
    if (block->empty()) break;
    for (int r = 0; r < block->num_rows(); ++r) {
      out.AddRow(block->x.row(r), block->y[r]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MatrixSource
// ---------------------------------------------------------------------------

MatrixSource::MatrixSource(std::shared_ptr<const Dataset> data)
    : data_(std::move(data)) {
  assert(data_ != nullptr);
}

Status MatrixSource::Reset() {
  cursor_ = 0;
  return Status::OK();
}

Result<RowBlock> MatrixSource::NextBlock(int max_rows) {
  if (max_rows <= 0) {
    return Status::InvalidArgument("NextBlock needs max_rows >= 1");
  }
  RowBlock block;
  const int n = data_->num_rows();
  const int take = std::min(max_rows, n - cursor_);
  if (take <= 0) return block;
  block.x = la::ConstMatrixView(data_->row(cursor_), take, data_->num_cols());
  block.y = data_->y_data() + cursor_;
  cursor_ += take;
  return block;
}

// ---------------------------------------------------------------------------
// CsvFileSource
// ---------------------------------------------------------------------------

Result<std::unique_ptr<CsvFileSource>> CsvFileSource::Open(
    const std::string& path) {
  std::unique_ptr<CsvFileSource> source(new CsvFileSource());
  source->path_ = path;
  const Status reset = source->Reset();
  if (!reset.ok()) return reset;
  return source;
}

Status CsvFileSource::Reset() {
  file_.close();
  file_.clear();
  file_.open(path_);
  if (!file_) return Status::IoError("cannot open " + path_);
  std::string line;
  if (!std::getline(file_, line)) {
    return Status::IoError("empty file: " + path_);
  }
  StripTrailingCr(&line);
  std::vector<std::string> header;
  SplitCsvLine(line, &header);
  if (header.size() < 2) {
    return Status::InvalidArgument(
        path_ + ": need at least one input column and the target");
  }
  num_cols_ = static_cast<int>(header.size()) - 1;
  names_.assign(header.begin(), header.end() - 1);
  target_name_ = header.back();
  line_no_ = 1;
  return Status::OK();
}

Result<RowBlock> CsvFileSource::NextBlock(int max_rows) {
  if (max_rows <= 0) {
    return Status::InvalidArgument("NextBlock needs max_rows >= 1");
  }
  x_buf_.resize(static_cast<size_t>(max_rows) * num_cols_);
  y_buf_.resize(static_cast<size_t>(max_rows));
  int rows = 0;
  std::string line;
  std::vector<std::string> cells;
  while (rows < max_rows && std::getline(file_, line)) {
    ++line_no_;
    StripTrailingCr(&line);
    if (line.empty()) continue;
    SplitCsvLine(line, &cells);
    if (static_cast<int>(cells.size()) != num_cols_ + 1) {
      return Status::InvalidArgument(path_ + ":" + std::to_string(line_no_) +
                                     ": ragged row");
    }
    double* row = x_buf_.data() + static_cast<size_t>(rows) * num_cols_;
    for (int c = 0; c <= num_cols_; ++c) {
      const std::string& cell = cells[static_cast<size_t>(c)];
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      // Non-finite values would poison the binning downstream (NaN breaks
      // the sketch's sort ordering and distinct-value dedup), so reject
      // them at the gate alongside non-numeric cells.
      if (end == cell.c_str() || *end != '\0' || !std::isfinite(v)) {
        return Status::InvalidArgument(path_ + ":" + std::to_string(line_no_) +
                                       ": non-numeric cell '" + cell + "'");
      }
      if (c < num_cols_) {
        row[c] = v;
      } else {
        y_buf_[static_cast<size_t>(rows)] = v;
      }
    }
    ++rows;
  }
  // getline also returns false on I/O errors; distinguish them from EOF so
  // a flaky read cannot silently truncate the stream.
  if (file_.bad()) return Status::IoError(path_ + ": read error");
  RowBlock block;
  if (rows == 0) return block;
  block.x = la::ConstMatrixView(x_buf_.data(), rows, num_cols_);
  block.y = y_buf_.data();
  return block;
}

// ---------------------------------------------------------------------------
// LabelingSource
// ---------------------------------------------------------------------------

Result<RowBlock> LabelingSource::NextBlock(int max_rows) {
  Result<RowBlock> inner = inner_->NextBlock(max_rows);
  if (!inner.ok() || inner->empty()) return inner;
  y_buf_.resize(static_cast<size_t>(inner->num_rows()));
  for (int r = 0; r < inner->num_rows(); ++r) {
    y_buf_[static_cast<size_t>(r)] = label_fn_(inner->x.row(r));
  }
  RowBlock block;
  block.x = inner->x;
  block.y = y_buf_.data();
  return block;
}

}  // namespace reds
