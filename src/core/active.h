// Active-learning extension of REDS (paper Section 10, future work): instead
// of spending the whole simulation budget on one space-filling design,
// iteratively ask the metamodel which points it is least certain about and
// simulate those. The resulting labeled set feeds REDS as usual.
#ifndef REDS_CORE_ACTIVE_H_
#define REDS_CORE_ACTIVE_H_

#include <functional>

#include "core/dataset.h"
#include "ml/tuning.h"
#include "sampling/design.h"

namespace reds {

/// One "simulation": returns the binary (or probabilistic) label of a point.
/// The x pointer holds `dim` doubles.
using LabelOracle = std::function<double(const double* x)>;

struct ActiveSamplingConfig {
  int initial_points = 100;   // seed design (LHS)
  int batch_size = 50;        // simulations added per round
  int rounds = 6;             // total budget = initial + batch * rounds
  int pool_size = 4000;       // uncertainty candidates per round
  ml::MetamodelKind metamodel = ml::MetamodelKind::kRandomForest;
  /// Blend of uncertainty vs coverage: each round keeps the pool points with
  /// the highest p(1-p) uncertainty under the current metamodel.
  sampling::PointSampler sampler;  // defaults to uniform
};

/// Runs uncertainty-driven sequential sampling against the oracle and
/// returns all labeled examples (initial design + queried batches).
Dataset RunActiveSampling(int dim, const LabelOracle& oracle,
                          const ActiveSamplingConfig& config, uint64_t seed);

}  // namespace reds

#endif  // REDS_CORE_ACTIVE_H_
