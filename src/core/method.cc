#include "core/method.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/quality.h"
#include "obs/trace.h"
#include "util/fingerprint.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace reds {

namespace {

const double kAlphaGrid[] = {0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2};
constexpr size_t kNumAlphas = sizeof(kAlphaGrid) / sizeof(kAlphaGrid[0]);

// Row-id views of one valid (non-degenerate, positives on both sides)
// train/holdout fold. The CV loops run fold-outer over these, so exactly
// one fold's materialized matrices and indexes are resident at a time;
// the fold geometry is identical to the historical all-folds-up-front
// split (same FoldAssignment, same skip rules).
struct FoldRows {
  std::vector<int> train_rows;
  std::vector<int> test_rows;
};

std::vector<FoldRows> MakeFoldRows(const Dataset& d, int folds,
                                   uint64_t seed) {
  const std::vector<int> fold = ml::FoldAssignment(d.num_rows(), folds, seed);
  std::vector<FoldRows> out;
  for (int f = 0; f < folds; ++f) {
    FoldRows rows;
    for (int i = 0; i < d.num_rows(); ++i) {
      (fold[static_cast<size_t>(i)] == f ? rows.test_rows : rows.train_rows)
          .push_back(i);
    }
    if (rows.train_rows.empty() || rows.test_rows.empty()) continue;
    // Same validity rule as Dataset::TotalPositive() > 0 on the subsets,
    // computed off the row ids so nothing is copied for skipped folds.
    const auto positive = [&d](const std::vector<int>& ids) {
      double total = 0.0;
      for (int r : ids) total += d.y(r);
      return total > 0.0;
    };
    if (!positive(rows.train_rows) || !positive(rows.test_rows)) continue;
    out.push_back(std::move(rows));
  }
  return out;
}

}  // namespace

Result<MethodSpec> MethodSpec::Parse(const std::string& name) {
  MethodSpec spec;
  size_t pos = 0;
  auto fail = [&name]() {
    return Status::InvalidArgument("unrecognized method name: " + name);
  };
  if (pos < name.size() && name[pos] == 'R') {
    spec.reds = true;
    ++pos;
  }
  if (name.compare(pos, 2, "PB") == 0) {
    spec.family = Family::kPrimBumping;
    pos += 2;
  } else if (name.compare(pos, 2, "BI") == 0) {
    spec.family = Family::kBi;
    pos += 2;
    if (pos < name.size() && name[pos] >= '1' && name[pos] <= '9') {
      spec.beam_size = name[pos] - '0';
      ++pos;
    }
  } else if (pos < name.size() && name[pos] == 'P') {
    spec.family = Family::kPrim;
    ++pos;
  } else {
    return fail();
  }
  if (pos < name.size() && name[pos] == 'c') {
    spec.tuned = true;
    ++pos;
  }
  if (spec.reds) {
    if (pos >= name.size()) return fail();
    switch (name[pos]) {
      case 'f':
        spec.metamodel = ml::MetamodelKind::kRandomForest;
        break;
      case 'x':
        spec.metamodel = ml::MetamodelKind::kGbt;
        break;
      case 's':
        spec.metamodel = ml::MetamodelKind::kSvm;
        break;
      default:
        return fail();
    }
    ++pos;
    if (pos < name.size() && name[pos] == 'p') {
      spec.probability_labels = true;
      ++pos;
    }
  }
  if (pos != name.size()) return fail();
  return spec;
}

std::string MethodSpec::ToName() const {
  std::string out;
  if (reds) out += 'R';
  switch (family) {
    case Family::kPrim:
      out += 'P';
      break;
    case Family::kPrimBumping:
      out += "PB";
      break;
    case Family::kBi:
      out += "BI";
      if (beam_size != 1) out += std::to_string(beam_size);
      break;
  }
  if (tuned) out += 'c';
  if (reds) {
    out += ml::MetamodelSuffix(metamodel);
    if (probability_labels) out += 'p';
  }
  return out;
}

std::vector<int> MGrid(int num_inputs) {
  const int step = (num_inputs + 5) / 6;  // ceil(M/6)
  std::vector<int> grid;
  for (int m = num_inputs; m > 0; m -= step) grid.push_back(m);
  return grid;
}

double CrossValidateAlpha(const Dataset& d, const RunOptions& options,
                          uint64_t seed) {
  double best_alpha = options.default_alpha;
  const auto folds = MakeFoldRows(d, options.cv_folds, seed);
  if (folds.empty()) return best_alpha;
  // Fold-outer, candidate-inner: one fold at a time is materialized,
  // indexed, and quantized once for the whole alpha grid, then freed --
  // peak CV residency is a single fold instead of all k. Per-candidate
  // totals still accumulate in fold order, so every score (and the winning
  // alpha) is bit-identical to the historical candidate-outer loop.
  std::vector<double> totals(kNumAlphas, 0.0);
  for (const FoldRows& rows : folds) {
    const Dataset train = d.SubsetRows(rows.train_rows);
    const Dataset holdout = d.SubsetRows(rows.test_rows);
    const auto index = ColumnIndex::Build(train);
    const auto binned = BinnedIndex::Build(*index);
    for (size_t a = 0; a < kNumAlphas; ++a) {
      PrimConfig config;
      config.alpha = kAlphaGrid[a];
      config.min_points = options.min_points;
      const PrimResult r =
          RunPrim(train, train, config, index.get(), binned.get());
      totals[a] += PrAucOnData(r.ReturnedBoxes(), holdout);
    }
  }
  double best_score = -1.0;
  for (size_t a = 0; a < kNumAlphas; ++a) {
    const double score = totals[a] / static_cast<double>(folds.size());
    if (score > best_score) {
      best_score = score;
      best_alpha = kAlphaGrid[a];
    }
  }
  return best_alpha;
}

namespace {

// REDS configuration of one run, shared by the materialized and streamed
// relabeling paths (identical seeds in, identical metamodels and point
// streams out).
RedsConfig RedsConfigFor(const MethodSpec& spec, const RunOptions& options) {
  RedsConfig config;
  config.metamodel = spec.metamodel;
  config.tune_metamodel = options.tune_metamodel;
  config.budget = options.budget;
  config.probability_labels = spec.probability_labels;
  config.num_new_points = spec.family == MethodSpec::Family::kBi
                              ? options.l_bi
                              : options.l_prim;
  config.split_backend = options.split_backend;
  config.tree_growth = options.tree_growth;
  config.tree_max_leaves = options.tree_max_leaves;
  config.sampler = options.sampler;
  config.metamodel_provider = options.metamodel_provider;
  return config;
}

// Cache key of a streamed REDS relabeling: everything that shapes the
// finished (index, labels) product. Training bytes (full scope: x AND y,
// both feed the metamodel), the metamodel recipe, label semantics, stream
// length and seed, the sampler identity, and block_rows -- block size moves
// sketch-binned boundaries, so differently-blocked builds are distinct
// products. Callers must gate on a keyable sampler (default uniform, or a
// custom one with a sampler_id) before trusting this.
uint64_t StreamedRelabelKey(const Dataset& train, const MethodSpec& spec,
                            const RunOptions& options, int num_new_points) {
  util::ByteWriter w;
  util::DatasetHasher hasher(util::DatasetHasher::Scope::kFull,
                             train.num_cols());
  hasher.AddRows(train.row(0), train.y_data(), train.num_rows());
  w.U64(hasher.Finalize());
  w.U8(static_cast<uint8_t>(spec.metamodel));
  w.U8(spec.probability_labels ? 1 : 0);
  w.U8(options.tune_metamodel ? 1 : 0);
  w.U8(static_cast<uint8_t>(options.budget));
  w.U8(static_cast<uint8_t>(options.split_backend));
  w.U8(static_cast<uint8_t>(options.tree_growth));
  w.I32(options.tree_max_leaves);
  w.I32(num_new_points);
  w.I32(options.stream_block_rows);
  w.U64(options.seed);
  w.U64(options.sampler_id.size());
  for (char c : options.sampler_id) w.U8(static_cast<uint8_t>(c));
  return util::Fnv64(w.data().data(), w.size());
}

}  // namespace

MethodPlan PlanMethod(const MethodSpec& spec, const Dataset& train,
                      const RunOptions& options) {
  MethodPlan plan;
  plan.spec = spec;
  const int dims = train.num_cols();

  // Hyperparameters of the SD algorithm are always optimized on the original
  // data D, not on REDS's relabeled D_new (paper Section 8.4.3).
  plan.alpha = options.default_alpha;
  plan.m = dims;
  if (spec.tuned) {
    obs::Span span("plan.tune");
    if (spec.IsPrimFamily()) {
      plan.alpha =
          CrossValidateAlpha(train, options, DeriveSeed(options.seed, 11));
    }
    if (spec.family == MethodSpec::Family::kBi) {
      // Fold-outer, candidate-inner (same shape as CrossValidateAlpha):
      // each fold is materialized and indexed once for the whole m grid,
      // and only one fold is ever resident. Per-candidate WRAcc totals
      // accumulate in fold order, matching the historical loop bit for
      // bit.
      const auto folds =
          MakeFoldRows(train, options.cv_folds, DeriveSeed(options.seed, 13));
      const std::vector<int> grid = MGrid(dims);
      std::vector<double> totals(grid.size(), 0.0);
      for (const FoldRows& rows : folds) {
        const Dataset fold_train = train.SubsetRows(rows.train_rows);
        const Dataset fold_holdout = train.SubsetRows(rows.test_rows);
        const auto index = ColumnIndex::Build(fold_train);
        for (size_t g = 0; g < grid.size(); ++g) {
          BiConfig config;
          config.beam_size = spec.beam_size;
          config.max_restricted = grid[g];
          const BiResult r = RunBi(fold_train, config, index.get());
          totals[static_cast<size_t>(g)] += BoxWRAcc(fold_holdout, r.box);
        }
      }
      double best_score = -1e300;
      for (size_t g = 0; g < grid.size(); ++g) {
        const double score =
            folds.empty() ? 0.0
                          : totals[g] / static_cast<double>(folds.size());
        if (score > best_score) {
          best_score = score;
          plan.m = grid[g];
        }
      }
    }
    if (spec.family == MethodSpec::Family::kPrimBumping) {
      BumpingConfig base;
      base.q = options.bumping_q;
      base.prim.alpha = plan.alpha;
      base.prim.min_points = options.min_points;
      // The historical loop re-derived identical folds for every m (same
      // seed); fold-outer keeps the fold geometry and the per-fold bumping
      // seeds (7000 + f) while materializing each fold once for the whole
      // grid.
      const uint64_t cv_seed = DeriveSeed(options.seed, 17);
      const auto folds = MakeFoldRows(train, options.cv_folds, cv_seed);
      const std::vector<int> grid = MGrid(dims);
      std::vector<double> totals(grid.size(), 0.0);
      for (size_t f = 0; f < folds.size(); ++f) {
        const Dataset fold_train = train.SubsetRows(folds[f].train_rows);
        const Dataset fold_holdout = train.SubsetRows(folds[f].test_rows);
        for (size_t g = 0; g < grid.size(); ++g) {
          BumpingConfig config = base;
          config.m = grid[g];
          const BumpingResult r = RunPrimBumping(
              fold_train, fold_train, config, DeriveSeed(cv_seed, 7000 + f));
          totals[g] += PrAucOnData(r.boxes, fold_holdout);
        }
      }
      double best_score = -1e300;
      for (size_t g = 0; g < grid.size(); ++g) {
        const double score =
            folds.empty() ? 0.0
                          : totals[g] / static_cast<double>(folds.size());
        if (score > best_score) {
          best_score = score;
          plan.m = grid[g];
        }
      }
    }
  }

  // Data plan: only REDS + plain PRIM has a streamed discovery kernel
  // (RunPrimStreamed); BI's beam refinement and bumping's per-replicate
  // subsets need raw doubles and keep the materializing fallback.
  plan.streamed_relabel = options.data_plan == MethodDataPlan::kStreamed &&
                          spec.reds &&
                          spec.family == MethodSpec::Family::kPrim;
  return plan;
}

MethodOutput ExecuteMethodPlan(const MethodPlan& plan, const Dataset& train,
                               const RunOptions& options) {
  const MethodSpec& spec = plan.spec;
  MethodOutput out;
  out.chosen_alpha = plan.alpha;
  out.chosen_m = plan.m;

  // Streamed REDS + PRIM: the L relabeled points flow sampler ->
  // metamodel labeling -> sketch binning -> binned peeling as a chunked
  // stream. Only O(stream_block_rows x M) relabeled doubles are ever
  // resident (plus the L x M uint8 codes of the quantization); the dense
  // relabeled Dataset of the materialized path below never exists. The
  // original simulated sample stays on as validation data either way, so
  // box selection is grounded in real labels.
  if (plan.streamed_relabel) {
    // The finished product of the stream -- quantized index + O(L) labels
    // -- is cacheable: consult the engine's relabel-stream hooks first. A
    // custom sampler is an opaque function, so caching needs a sampler_id
    // naming it; the default uniform sampler is always keyable.
    const RedsConfig rconfig = RedsConfigFor(spec, options);
    const bool keyable = !options.sampler || !options.sampler_id.empty();
    const bool has_hooks =
        options.streamed_relabel_lookup || options.streamed_relabel_store;
    const uint64_t key =
        keyable && has_hooks
            ? StreamedRelabelKey(train, spec, options, rconfig.num_new_points)
            : 0;
    std::shared_ptr<const StreamedDataset> data;
    if (keyable && options.streamed_relabel_lookup) {
      data = options.streamed_relabel_lookup(key, rconfig.num_new_points,
                                             train.num_cols());
      if (data != nullptr) {
        // Warm path: zero labeling passes, zero code rebuilds. The marker
        // lets tests assert the job did neither.
        obs::TraceInstant("relabel.cached");
      }
    }
    if (data == nullptr) {
      // One relabel.stream span covers sampling, metamodel labeling, and
      // the sketch/code passes: the relabeled points only exist inside this
      // chunked pipeline. Deliberately NOT index.build -- this is per-job
      // REDS work that runs warm or cold, while index.build marks
      // engine-side training-index construction that a warm engine skips
      // entirely.
      Result<StreamedDataset> streamed = [&] {
        obs::Span span("relabel.stream");
        RedsStreamedRelabeling relabeling =
            RedsRelabelStreamed(train, rconfig, DeriveSeed(options.seed, 23));
        StreamedBuildOptions build;
        build.block_rows = options.stream_block_rows;
        return BinnedIndex::BuildStreamed(relabeling.new_data.get(), build);
      }();
      if (!streamed.ok()) {
        throw std::runtime_error("streamed REDS relabeling failed: " +
                                 streamed.status().ToString());
      }
      auto owned =
          std::make_shared<StreamedDataset>(std::move(streamed).value());
      if (keyable && options.streamed_relabel_store) {
        options.streamed_relabel_store(key, owned);
      }
      data = std::move(owned);
    }
    PrimConfig config;
    config.alpha = plan.alpha;
    config.min_points = options.min_points;
    const PrimResult r = RunPrimStreamed(*data->index, data->y, config, &train);
    out.trajectory = r.ReturnedBoxes();
    out.last_box = r.BestBox();
    return out;
  }

  // REDS: replace the data the SD algorithm sees. The original simulated
  // examples stay on as validation data, so box selection (and bumping's
  // Pareto filter) is grounded in real labels rather than metamodel
  // artifacts.
  const Dataset* sd_data = &train;
  const Dataset* sd_val = &train;
  Dataset relabeled;
  if (spec.reds) {
    obs::Span span("relabel.materialize");
    RedsRelabeling relabeling = RedsRelabel(train, RedsConfigFor(spec, options),
                                            DeriveSeed(options.seed, 23));
    relabeled = std::move(relabeling.new_data);
    sd_data = &relabeled;
  }

  // Index the SD dataset once; PRIM and BI scan it column-wise for every
  // peel/refinement. Only the original dataset goes through the provider
  // (it is shared across a batch's method variants); REDS-relabeled data is
  // request-local, so the kernels build a private index for it instead of
  // churning the engine cache. Bumping indexes its per-replicate feature
  // subsets internally.
  std::shared_ptr<const ColumnIndex> sd_index;
  std::shared_ptr<const BinnedIndex> sd_binned;
  if (options.column_index_provider && !spec.reds &&
      spec.family != MethodSpec::Family::kPrimBumping) {
    sd_index = options.column_index_provider(*sd_data);
    if (options.binned_index_provider &&
        spec.family == MethodSpec::Family::kPrim) {
      sd_binned = options.binned_index_provider(*sd_data);
    }
  }

  switch (spec.family) {
    case MethodSpec::Family::kPrim: {
      PrimConfig config;
      config.alpha = plan.alpha;
      config.min_points = options.min_points;
      const PrimResult r =
          RunPrim(*sd_data, *sd_val, config, sd_index.get(), sd_binned.get());
      out.trajectory = r.ReturnedBoxes();
      out.last_box = r.BestBox();
      break;
    }
    case MethodSpec::Family::kPrimBumping: {
      obs::Span span("discover.bumping");
      BumpingConfig config;
      config.q = options.bumping_q;
      config.m = plan.m;
      config.prim.alpha = plan.alpha;
      config.prim.min_points = options.min_points;
      const BumpingResult r = RunPrimBumping(*sd_data, *sd_val, config,
                                             DeriveSeed(options.seed, 29));
      out.trajectory = r.boxes;
      out.last_box = r.BestBox();
      break;
    }
    case MethodSpec::Family::kBi: {
      obs::Span span("discover.bi");
      BiConfig config;
      config.beam_size = spec.beam_size;
      config.max_restricted = plan.m;
      const BiResult r = RunBi(*sd_data, config, sd_index.get());
      out.trajectory = {r.box};
      out.last_box = r.box;
      break;
    }
  }
  return out;
}

MethodOutput RunMethod(const MethodSpec& spec, const Dataset& train,
                       const RunOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const MethodPlan plan = PlanMethod(spec, train, options);
  MethodOutput out = ExecuteMethodPlan(plan, train, options);
  out.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

MethodOutput RunMethodOnStream(const MethodSpec& spec,
                               const BinnedIndex& binned,
                               const std::vector<double>& y,
                               const RunOptions& options) {
  if (spec.reds || spec.tuned || spec.family != MethodSpec::Family::kPrim) {
    throw std::invalid_argument(
        "RunMethodOnStream supports only untuned plain PRIM (\"" +
        spec.ToName() +
        "\" needs raw doubles; materialize the source and use RunMethod)");
  }
  const auto start = std::chrono::steady_clock::now();
  MethodOutput out;
  out.chosen_alpha = options.default_alpha;
  out.chosen_m = binned.num_cols();
  PrimConfig config;
  config.alpha = options.default_alpha;
  config.min_points = options.min_points;
  const PrimResult r = RunPrimStreamed(binned, y, config);
  out.trajectory = r.ReturnedBoxes();
  out.last_box = r.BestBox();
  out.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace reds
