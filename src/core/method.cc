#include "core/method.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/quality.h"
#include "obs/trace.h"
#include "util/fingerprint.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace reds {

namespace {

const double kAlphaGrid[] = {0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2};

// Train/holdout split pairs for k-fold CV, skipping degenerate folds.
struct FoldSplit {
  Dataset train;
  Dataset holdout;
};

std::vector<FoldSplit> MakeFolds(const Dataset& d, int folds, uint64_t seed) {
  const std::vector<int> fold = ml::FoldAssignment(d.num_rows(), folds, seed);
  std::vector<FoldSplit> out;
  for (int f = 0; f < folds; ++f) {
    std::vector<int> train_rows, test_rows;
    for (int i = 0; i < d.num_rows(); ++i) {
      (fold[static_cast<size_t>(i)] == f ? test_rows : train_rows).push_back(i);
    }
    if (train_rows.empty() || test_rows.empty()) continue;
    FoldSplit split{d.SubsetRows(train_rows), d.SubsetRows(test_rows)};
    if (split.train.TotalPositive() <= 0.0 ||
        split.holdout.TotalPositive() <= 0.0) {
      continue;
    }
    out.push_back(std::move(split));
  }
  return out;
}

// Per-fold shared views of the training data: the columnar index (and, for
// PRIM's binned peeling, the quantization derived from it), built once and
// shared across every grid candidate the CV loops evaluate on that fold.
struct FoldIndexes {
  std::shared_ptr<const ColumnIndex> index;
  std::shared_ptr<const BinnedIndex> binned;
};

std::vector<FoldIndexes> IndexFolds(const std::vector<FoldSplit>& splits,
                                    bool binned) {
  std::vector<FoldIndexes> indexes;
  indexes.reserve(splits.size());
  for (const auto& split : splits) {
    FoldIndexes fold;
    fold.index = ColumnIndex::Build(split.train);
    if (binned) fold.binned = BinnedIndex::Build(*fold.index);
    indexes.push_back(std::move(fold));
  }
  return indexes;
}

// Held-out WRAcc of the BI box, averaged over folds, for a given m.
double CvWraccForM(const std::vector<FoldSplit>& splits,
                   const std::vector<FoldIndexes>& indexes,
                   int m, int beam_size) {
  if (splits.empty()) return 0.0;
  double total = 0.0;
  for (size_t f = 0; f < splits.size(); ++f) {
    BiConfig config;
    config.beam_size = beam_size;
    config.max_restricted = m;
    const BiResult r = RunBi(splits[f].train, config, indexes[f].index.get());
    total += BoxWRAcc(splits[f].holdout, r.box);
  }
  return total / static_cast<double>(splits.size());
}

// Held-out PR AUC of the bumping Pareto set for a given m.
double CvPrAucForBumpingM(const Dataset& d, int m, const BumpingConfig& base,
                          int folds, uint64_t seed) {
  const auto splits = MakeFolds(d, folds, seed);
  if (splits.empty()) return 0.0;
  double total = 0.0;
  for (size_t f = 0; f < splits.size(); ++f) {
    BumpingConfig config = base;
    config.m = m;
    const BumpingResult r =
        RunPrimBumping(splits[f].train, splits[f].train, config,
                       DeriveSeed(seed, 7000 + f));
    total += PrAucOnData(r.boxes, splits[f].holdout);
  }
  return total / static_cast<double>(splits.size());
}

}  // namespace

Result<MethodSpec> MethodSpec::Parse(const std::string& name) {
  MethodSpec spec;
  size_t pos = 0;
  auto fail = [&name]() {
    return Status::InvalidArgument("unrecognized method name: " + name);
  };
  if (pos < name.size() && name[pos] == 'R') {
    spec.reds = true;
    ++pos;
  }
  if (name.compare(pos, 2, "PB") == 0) {
    spec.family = Family::kPrimBumping;
    pos += 2;
  } else if (name.compare(pos, 2, "BI") == 0) {
    spec.family = Family::kBi;
    pos += 2;
    if (pos < name.size() && name[pos] >= '1' && name[pos] <= '9') {
      spec.beam_size = name[pos] - '0';
      ++pos;
    }
  } else if (pos < name.size() && name[pos] == 'P') {
    spec.family = Family::kPrim;
    ++pos;
  } else {
    return fail();
  }
  if (pos < name.size() && name[pos] == 'c') {
    spec.tuned = true;
    ++pos;
  }
  if (spec.reds) {
    if (pos >= name.size()) return fail();
    switch (name[pos]) {
      case 'f':
        spec.metamodel = ml::MetamodelKind::kRandomForest;
        break;
      case 'x':
        spec.metamodel = ml::MetamodelKind::kGbt;
        break;
      case 's':
        spec.metamodel = ml::MetamodelKind::kSvm;
        break;
      default:
        return fail();
    }
    ++pos;
    if (pos < name.size() && name[pos] == 'p') {
      spec.probability_labels = true;
      ++pos;
    }
  }
  if (pos != name.size()) return fail();
  return spec;
}

std::string MethodSpec::ToName() const {
  std::string out;
  if (reds) out += 'R';
  switch (family) {
    case Family::kPrim:
      out += 'P';
      break;
    case Family::kPrimBumping:
      out += "PB";
      break;
    case Family::kBi:
      out += "BI";
      if (beam_size != 1) out += std::to_string(beam_size);
      break;
  }
  if (tuned) out += 'c';
  if (reds) {
    out += ml::MetamodelSuffix(metamodel);
    if (probability_labels) out += 'p';
  }
  return out;
}

std::vector<int> MGrid(int num_inputs) {
  const int step = (num_inputs + 5) / 6;  // ceil(M/6)
  std::vector<int> grid;
  for (int m = num_inputs; m > 0; m -= step) grid.push_back(m);
  return grid;
}

double CrossValidateAlpha(const Dataset& d, const RunOptions& options,
                          uint64_t seed) {
  double best_alpha = options.default_alpha;
  double best_score = -1.0;
  const auto splits = MakeFolds(d, options.cv_folds, seed);
  if (splits.empty()) return best_alpha;
  // Each fold is peeled once per alpha candidate: index and quantize it
  // once for the whole grid.
  const auto indexes = IndexFolds(splits, /*binned=*/true);
  for (double alpha : kAlphaGrid) {
    double total = 0.0;
    for (size_t f = 0; f < splits.size(); ++f) {
      PrimConfig config;
      config.alpha = alpha;
      config.min_points = options.min_points;
      const PrimResult r = RunPrim(splits[f].train, splits[f].train, config,
                                   indexes[f].index.get(),
                                   indexes[f].binned.get());
      total += PrAucOnData(r.ReturnedBoxes(), splits[f].holdout);
    }
    const double score = total / static_cast<double>(splits.size());
    if (score > best_score) {
      best_score = score;
      best_alpha = alpha;
    }
  }
  return best_alpha;
}

namespace {

// REDS configuration of one run, shared by the materialized and streamed
// relabeling paths (identical seeds in, identical metamodels and point
// streams out).
RedsConfig RedsConfigFor(const MethodSpec& spec, const RunOptions& options) {
  RedsConfig config;
  config.metamodel = spec.metamodel;
  config.tune_metamodel = options.tune_metamodel;
  config.budget = options.budget;
  config.probability_labels = spec.probability_labels;
  config.num_new_points = spec.family == MethodSpec::Family::kBi
                              ? options.l_bi
                              : options.l_prim;
  config.split_backend = options.split_backend;
  config.sampler = options.sampler;
  config.metamodel_provider = options.metamodel_provider;
  return config;
}

// Cache key of a streamed REDS relabeling: everything that shapes the
// finished (index, labels) product. Training bytes (full scope: x AND y,
// both feed the metamodel), the metamodel recipe, label semantics, stream
// length and seed, the sampler identity, and block_rows -- block size moves
// sketch-binned boundaries, so differently-blocked builds are distinct
// products. Callers must gate on a keyable sampler (default uniform, or a
// custom one with a sampler_id) before trusting this.
uint64_t StreamedRelabelKey(const Dataset& train, const MethodSpec& spec,
                            const RunOptions& options, int num_new_points) {
  util::ByteWriter w;
  util::DatasetHasher hasher(util::DatasetHasher::Scope::kFull,
                             train.num_cols());
  hasher.AddRows(train.row(0), train.y_data(), train.num_rows());
  w.U64(hasher.Finalize());
  w.U8(static_cast<uint8_t>(spec.metamodel));
  w.U8(spec.probability_labels ? 1 : 0);
  w.U8(options.tune_metamodel ? 1 : 0);
  w.U8(static_cast<uint8_t>(options.budget));
  w.U8(static_cast<uint8_t>(options.split_backend));
  w.I32(num_new_points);
  w.I32(options.stream_block_rows);
  w.U64(options.seed);
  w.U64(options.sampler_id.size());
  for (char c : options.sampler_id) w.U8(static_cast<uint8_t>(c));
  return util::Fnv64(w.data().data(), w.size());
}

}  // namespace

MethodPlan PlanMethod(const MethodSpec& spec, const Dataset& train,
                      const RunOptions& options) {
  MethodPlan plan;
  plan.spec = spec;
  const int dims = train.num_cols();

  // Hyperparameters of the SD algorithm are always optimized on the original
  // data D, not on REDS's relabeled D_new (paper Section 8.4.3).
  plan.alpha = options.default_alpha;
  plan.m = dims;
  if (spec.tuned) {
    obs::Span span("plan.tune");
    if (spec.IsPrimFamily()) {
      plan.alpha =
          CrossValidateAlpha(train, options, DeriveSeed(options.seed, 11));
    }
    if (spec.family == MethodSpec::Family::kBi) {
      // Folds (and their indexes) are identical for every m candidate:
      // build them once for the whole grid.
      const auto splits =
          MakeFolds(train, options.cv_folds, DeriveSeed(options.seed, 13));
      const auto indexes = IndexFolds(splits, /*binned=*/false);
      double best_score = -1e300;
      for (int candidate : MGrid(dims)) {
        const double score =
            CvWraccForM(splits, indexes, candidate, spec.beam_size);
        if (score > best_score) {
          best_score = score;
          plan.m = candidate;
        }
      }
    }
    if (spec.family == MethodSpec::Family::kPrimBumping) {
      BumpingConfig base;
      base.q = options.bumping_q;
      base.prim.alpha = plan.alpha;
      base.prim.min_points = options.min_points;
      double best_score = -1e300;
      for (int candidate : MGrid(dims)) {
        const double score =
            CvPrAucForBumpingM(train, candidate, base, options.cv_folds,
                               DeriveSeed(options.seed, 17));
        if (score > best_score) {
          best_score = score;
          plan.m = candidate;
        }
      }
    }
  }

  // Data plan: only REDS + plain PRIM has a streamed discovery kernel
  // (RunPrimStreamed); BI's beam refinement and bumping's per-replicate
  // subsets need raw doubles and keep the materializing fallback.
  plan.streamed_relabel = options.data_plan == MethodDataPlan::kStreamed &&
                          spec.reds &&
                          spec.family == MethodSpec::Family::kPrim;
  return plan;
}

MethodOutput ExecuteMethodPlan(const MethodPlan& plan, const Dataset& train,
                               const RunOptions& options) {
  const MethodSpec& spec = plan.spec;
  MethodOutput out;
  out.chosen_alpha = plan.alpha;
  out.chosen_m = plan.m;

  // Streamed REDS + PRIM: the L relabeled points flow sampler ->
  // metamodel labeling -> sketch binning -> binned peeling as a chunked
  // stream. Only O(stream_block_rows x M) relabeled doubles are ever
  // resident (plus the L x M uint8 codes of the quantization); the dense
  // relabeled Dataset of the materialized path below never exists. The
  // original simulated sample stays on as validation data either way, so
  // box selection is grounded in real labels.
  if (plan.streamed_relabel) {
    // The finished product of the stream -- quantized index + O(L) labels
    // -- is cacheable: consult the engine's relabel-stream hooks first. A
    // custom sampler is an opaque function, so caching needs a sampler_id
    // naming it; the default uniform sampler is always keyable.
    const RedsConfig rconfig = RedsConfigFor(spec, options);
    const bool keyable = !options.sampler || !options.sampler_id.empty();
    const bool has_hooks =
        options.streamed_relabel_lookup || options.streamed_relabel_store;
    const uint64_t key =
        keyable && has_hooks
            ? StreamedRelabelKey(train, spec, options, rconfig.num_new_points)
            : 0;
    std::shared_ptr<const StreamedDataset> data;
    if (keyable && options.streamed_relabel_lookup) {
      data = options.streamed_relabel_lookup(key, rconfig.num_new_points,
                                             train.num_cols());
      if (data != nullptr) {
        // Warm path: zero labeling passes, zero code rebuilds. The marker
        // lets tests assert the job did neither.
        obs::TraceInstant("relabel.cached");
      }
    }
    if (data == nullptr) {
      // One relabel.stream span covers sampling, metamodel labeling, and
      // the sketch/code passes: the relabeled points only exist inside this
      // chunked pipeline. Deliberately NOT index.build -- this is per-job
      // REDS work that runs warm or cold, while index.build marks
      // engine-side training-index construction that a warm engine skips
      // entirely.
      Result<StreamedDataset> streamed = [&] {
        obs::Span span("relabel.stream");
        RedsStreamedRelabeling relabeling =
            RedsRelabelStreamed(train, rconfig, DeriveSeed(options.seed, 23));
        StreamedBuildOptions build;
        build.block_rows = options.stream_block_rows;
        return BinnedIndex::BuildStreamed(relabeling.new_data.get(), build);
      }();
      if (!streamed.ok()) {
        throw std::runtime_error("streamed REDS relabeling failed: " +
                                 streamed.status().ToString());
      }
      auto owned =
          std::make_shared<StreamedDataset>(std::move(streamed).value());
      if (keyable && options.streamed_relabel_store) {
        options.streamed_relabel_store(key, owned);
      }
      data = std::move(owned);
    }
    PrimConfig config;
    config.alpha = plan.alpha;
    config.min_points = options.min_points;
    const PrimResult r = RunPrimStreamed(*data->index, data->y, config, &train);
    out.trajectory = r.ReturnedBoxes();
    out.last_box = r.BestBox();
    return out;
  }

  // REDS: replace the data the SD algorithm sees. The original simulated
  // examples stay on as validation data, so box selection (and bumping's
  // Pareto filter) is grounded in real labels rather than metamodel
  // artifacts.
  const Dataset* sd_data = &train;
  const Dataset* sd_val = &train;
  Dataset relabeled;
  if (spec.reds) {
    obs::Span span("relabel.materialize");
    RedsRelabeling relabeling = RedsRelabel(train, RedsConfigFor(spec, options),
                                            DeriveSeed(options.seed, 23));
    relabeled = std::move(relabeling.new_data);
    sd_data = &relabeled;
  }

  // Index the SD dataset once; PRIM and BI scan it column-wise for every
  // peel/refinement. Only the original dataset goes through the provider
  // (it is shared across a batch's method variants); REDS-relabeled data is
  // request-local, so the kernels build a private index for it instead of
  // churning the engine cache. Bumping indexes its per-replicate feature
  // subsets internally.
  std::shared_ptr<const ColumnIndex> sd_index;
  std::shared_ptr<const BinnedIndex> sd_binned;
  if (options.column_index_provider && !spec.reds &&
      spec.family != MethodSpec::Family::kPrimBumping) {
    sd_index = options.column_index_provider(*sd_data);
    if (options.binned_index_provider &&
        spec.family == MethodSpec::Family::kPrim) {
      sd_binned = options.binned_index_provider(*sd_data);
    }
  }

  switch (spec.family) {
    case MethodSpec::Family::kPrim: {
      PrimConfig config;
      config.alpha = plan.alpha;
      config.min_points = options.min_points;
      const PrimResult r =
          RunPrim(*sd_data, *sd_val, config, sd_index.get(), sd_binned.get());
      out.trajectory = r.ReturnedBoxes();
      out.last_box = r.BestBox();
      break;
    }
    case MethodSpec::Family::kPrimBumping: {
      obs::Span span("discover.bumping");
      BumpingConfig config;
      config.q = options.bumping_q;
      config.m = plan.m;
      config.prim.alpha = plan.alpha;
      config.prim.min_points = options.min_points;
      const BumpingResult r = RunPrimBumping(*sd_data, *sd_val, config,
                                             DeriveSeed(options.seed, 29));
      out.trajectory = r.boxes;
      out.last_box = r.BestBox();
      break;
    }
    case MethodSpec::Family::kBi: {
      obs::Span span("discover.bi");
      BiConfig config;
      config.beam_size = spec.beam_size;
      config.max_restricted = plan.m;
      const BiResult r = RunBi(*sd_data, config, sd_index.get());
      out.trajectory = {r.box};
      out.last_box = r.box;
      break;
    }
  }
  return out;
}

MethodOutput RunMethod(const MethodSpec& spec, const Dataset& train,
                       const RunOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const MethodPlan plan = PlanMethod(spec, train, options);
  MethodOutput out = ExecuteMethodPlan(plan, train, options);
  out.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

MethodOutput RunMethodOnStream(const MethodSpec& spec,
                               const BinnedIndex& binned,
                               const std::vector<double>& y,
                               const RunOptions& options) {
  if (spec.reds || spec.tuned || spec.family != MethodSpec::Family::kPrim) {
    throw std::invalid_argument(
        "RunMethodOnStream supports only untuned plain PRIM (\"" +
        spec.ToName() +
        "\" needs raw doubles; materialize the source and use RunMethod)");
  }
  const auto start = std::chrono::steady_clock::now();
  MethodOutput out;
  out.chosen_alpha = options.default_alpha;
  out.chosen_m = binned.num_cols();
  PrimConfig config;
  config.alpha = options.default_alpha;
  config.min_points = options.min_points;
  const PrimResult r = RunPrimStreamed(binned, y, config);
  out.trajectory = r.ReturnedBoxes();
  out.last_box = r.BestBox();
  out.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace reds
