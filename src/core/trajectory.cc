#include "core/trajectory.h"

#include <algorithm>
#include <cmath>

namespace reds {

namespace {

// Slope of the PR curve between two trajectory points; vertical segments get
// a large finite slope so curvature stays comparable.
double SegmentSlope(const PrPoint& a, const PrPoint& b) {
  const double dr = a.recall - b.recall;
  const double dp = b.precision - a.precision;
  if (std::fabs(dr) < 1e-12) return dp >= 0.0 ? 1e6 : -1e6;
  return dp / dr;
}

}  // namespace

std::vector<int> FindTrajectoryKnees(const std::vector<PrPoint>& curve,
                                     int max_knees, int min_separation,
                                     bool include_endpoints) {
  std::vector<int> knees;
  const int n = static_cast<int>(curve.size());
  if (n < 3) {
    if (include_endpoints && n > 0) {
      knees.push_back(0);
      if (n > 1) knees.push_back(n - 1);
    }
    return knees;
  }

  // Curvature proxy: change of slope at each interior point.
  std::vector<std::pair<double, int>> scored;  // (|slope change|, index)
  for (int i = 1; i + 1 < n; ++i) {
    const double before = SegmentSlope(curve[static_cast<size_t>(i - 1)],
                                       curve[static_cast<size_t>(i)]);
    const double after = SegmentSlope(curve[static_cast<size_t>(i)],
                                      curve[static_cast<size_t>(i + 1)]);
    scored.emplace_back(std::fabs(after - before), i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [score, index] : scored) {
    if (static_cast<int>(knees.size()) >= max_knees) break;
    bool too_close = false;
    for (int k : knees) {
      if (std::abs(k - index) < min_separation) too_close = true;
    }
    if (!too_close) knees.push_back(index);
  }
  std::sort(knees.begin(), knees.end());

  if (include_endpoints) {
    if (knees.empty() || knees.front() != 0) knees.insert(knees.begin(), 0);
    if (knees.back() != n - 1) knees.push_back(n - 1);
  }
  return knees;
}

int MaxChordDistanceKnee(const std::vector<PrPoint>& curve) {
  const int n = static_cast<int>(curve.size());
  if (n < 3) return -1;
  const PrPoint& a = curve.front();
  const PrPoint& b = curve.back();
  const double dx = b.recall - a.recall;
  const double dy = b.precision - a.precision;
  const double norm = std::sqrt(dx * dx + dy * dy);
  if (norm < 1e-12) return -1;
  int best = -1;
  double best_dist = -1.0;
  for (int i = 1; i + 1 < n; ++i) {
    const double px = curve[static_cast<size_t>(i)].recall - a.recall;
    const double py = curve[static_cast<size_t>(i)].precision - a.precision;
    const double dist = std::fabs(px * dy - py * dx) / norm;
    if (dist > best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

}  // namespace reds
