// The covering approach (paper Section 3.2): to find several subgroups, run
// a scenario-discovery algorithm repeatedly, each time on the examples not
// covered by previously discovered boxes.
#ifndef REDS_CORE_COVERING_H_
#define REDS_CORE_COVERING_H_

#include <functional>
#include <vector>

#include "core/box.h"
#include "core/dataset.h"

namespace reds {

/// One scenario-discovery invocation: given a dataset, return a single box.
using SingleBoxDiscoverer = std::function<Box(const Dataset&)>;

struct CoveringResult {
  std::vector<Box> boxes;
  /// Per-box precision/recall measured on the *original* data (recall with
  /// respect to the positives still uncovered when the box was found).
  std::vector<double> precision;
  std::vector<double> coverage_share;  // share of all positives each box adds
};

/// Runs `discover` up to `max_subgroups` times, removing covered examples
/// after each round. Stops early when fewer than `min_points` examples or no
/// positives remain, or when a discovered box covers nothing new.
CoveringResult RunCovering(const Dataset& d, const SingleBoxDiscoverer& discover,
                           int max_subgroups, int min_points = 20);

}  // namespace reds

#endif  // REDS_CORE_COVERING_H_
