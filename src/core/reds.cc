#include "core/reds.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.h"
#include "util/rng.h"

namespace reds {

namespace {

std::shared_ptr<const ml::Metamodel> FitMetamodel(const Dataset& d,
                                                  const RedsConfig& config,
                                                  uint64_t seed) {
  if (config.metamodel_provider) {
    // The provider (engine cache) traces its own hit/load/fit breakdown.
    return config.metamodel_provider(
        d, config.metamodel, config.tune_metamodel, config.budget,
        config.split_backend, config.tree_growth, config.tree_max_leaves,
        seed);
  }
  obs::Span span("metamodel.fit");
  return ml::FitMetamodel(config.metamodel, d, seed, config.tune_metamodel,
                          config.budget, nullptr, nullptr,
                          config.split_backend, config.tree_growth,
                          config.tree_max_leaves);
}

Dataset LabelPoints(const ml::Metamodel& model, const std::vector<double>& x,
                    int num_cols, bool probability_labels) {
  assert(x.size() % static_cast<size_t>(num_cols) == 0);
  const int n = static_cast<int>(x.size()) / num_cols;
  Dataset out(num_cols);
  out.Reserve(n);
  for (int i = 0; i < n; ++i) {
    const double* row = x.data() + static_cast<size_t>(i) * num_cols;
    out.AddRow(row, MetamodelLabel(model, row, probability_labels));
  }
  return out;
}

// D_new as a stream: one sequential sampler RNG draws the points in row
// order and the metamodel labels each block in place. Replaying the RNG
// from the same derived seed on Reset() makes both build passes (and any
// block size) see the identical row sequence -- and, because the seed
// derivation and the per-row sampler/label calls are exactly RedsRelabel's,
// the stream is bit-identical to the materialized new_data.
//
// Labeling is the expensive half of a pass (a metamodel prediction per row
// vs. a handful of RNG draws), so the labels of pass 1 are cached in an
// O(L) vector (cache_stream_labels, default on): every later pass replays
// the RNG for x and serves y from the cache -- the historical
// labels-twice cost of the two-pass streamed build collapses to one
// labeling pass. With preset labels (an engine relabel-stream cache hit)
// even the first pass never consults a metamodel. The L x M point matrix
// is never cached on any path. A "relabel.label_pass" trace instant marks
// each pass that performs fresh metamodel labeling.
class RedsRelabelSource : public DatasetSource {
 public:
  RedsRelabelSource(std::shared_ptr<const ml::Metamodel> metamodel,
                    sampling::PointSampler sampler, int num_cols,
                    int64_t num_rows, uint64_t sampler_seed,
                    bool probability_labels, bool cache_labels,
                    std::shared_ptr<const std::vector<double>> preset_labels,
                    std::function<void(
                        std::shared_ptr<const std::vector<double>>)>
                        labels_sink)
      : metamodel_(std::move(metamodel)),
        sampler_(std::move(sampler)),
        num_cols_(num_cols),
        num_rows_(num_rows),
        sampler_seed_(sampler_seed),
        probability_labels_(probability_labels),
        labels_sink_(std::move(labels_sink)),
        rng_(sampler_seed) {
    if (preset_labels != nullptr &&
        preset_labels->size() == static_cast<size_t>(num_rows)) {
      preset_ = std::move(preset_labels);
      labeled_ = num_rows_;
    } else if (cache_labels) {
      building_ = std::make_shared<std::vector<double>>();
      building_->reserve(static_cast<size_t>(num_rows));
    }
    assert(preset_ != nullptr || metamodel_ != nullptr);
  }

  int num_cols() const override { return num_cols_; }
  int64_t num_rows_hint() const override { return num_rows_; }

  Status Reset() override {
    rng_ = Rng(sampler_seed_);
    cursor_ = 0;
    labeled_this_pass_ = false;
    return Status::OK();
  }

  Result<RowBlock> NextBlock(int max_rows) override {
    if (max_rows <= 0) {
      return Status::InvalidArgument("NextBlock needs max_rows >= 1");
    }
    RowBlock block;
    const int take =
        static_cast<int>(std::min<int64_t>(max_rows, num_rows_ - cursor_));
    if (take <= 0) return block;
    x_buf_.resize(static_cast<size_t>(take) * num_cols_);
    y_buf_.resize(static_cast<size_t>(take));
    const std::vector<double>* known =
        preset_ != nullptr ? preset_.get() : building_.get();
    for (int r = 0; r < take; ++r) {
      double* x = x_buf_.data() + static_cast<size_t>(r) * num_cols_;
      sampler_(&rng_, num_cols_, x);
      const int64_t row = cursor_ + r;
      if (row < labeled_) {
        y_buf_[static_cast<size_t>(r)] = (*known)[static_cast<size_t>(row)];
        continue;
      }
      if (!labeled_this_pass_) {
        labeled_this_pass_ = true;
        obs::TraceInstant("relabel.label_pass");
      }
      const double y = MetamodelLabel(*metamodel_, x, probability_labels_);
      y_buf_[static_cast<size_t>(r)] = y;
      if (building_ != nullptr) {
        building_->push_back(y);
        labeled_ = row + 1;
      }
    }
    cursor_ += take;
    if (building_ != nullptr && labeled_ == num_rows_ && labels_sink_) {
      labels_sink_(building_);
      labels_sink_ = nullptr;  // fire once
    }
    block.x = la::ConstMatrixView(x_buf_.data(), take, num_cols_);
    block.y = y_buf_.data();
    return block;
  }

 private:
  std::shared_ptr<const ml::Metamodel> metamodel_;
  sampling::PointSampler sampler_;
  int num_cols_;
  int64_t num_rows_;
  uint64_t sampler_seed_;
  bool probability_labels_;
  std::shared_ptr<const std::vector<double>> preset_;   // cache-hit labels
  std::shared_ptr<std::vector<double>> building_;       // pass-1 label cache
  int64_t labeled_ = 0;  // rows [0, labeled_) have known labels
  std::function<void(std::shared_ptr<const std::vector<double>>)> labels_sink_;
  Rng rng_;
  int64_t cursor_ = 0;
  bool labeled_this_pass_ = false;
  std::vector<double> x_buf_;
  std::vector<double> y_buf_;
};

}  // namespace

double MetamodelLabel(const ml::Metamodel& model, const double* x,
                      bool probability_labels) {
  const double p = model.PredictProb(x);
  return probability_labels ? p : (p > 0.5 ? 1.0 : 0.0);
}

RedsRelabeling RedsRelabel(const Dataset& d, const RedsConfig& config,
                           uint64_t seed) {
  assert(d.num_rows() > 0 && config.num_new_points > 0);
  RedsRelabeling out;
  out.metamodel = FitMetamodel(d, config, DeriveSeed(seed, 1));

  const int m = d.num_cols();
  sampling::PointSampler sampler =
      config.sampler ? config.sampler : sampling::MakeUniformSampler();
  Rng rng(DeriveSeed(seed, 2));
  std::vector<double> x(static_cast<size_t>(config.num_new_points) *
                        static_cast<size_t>(m));
  for (int i = 0; i < config.num_new_points; ++i) {
    sampler(&rng, m, x.data() + static_cast<size_t>(i) * m);
  }
  out.new_data =
      LabelPoints(*out.metamodel, x, m, config.probability_labels);
  return out;
}

RedsRelabeling RedsRelabelPoints(const Dataset& d,
                                 const std::vector<double>& unlabeled_x,
                                 const RedsConfig& config, uint64_t seed) {
  assert(d.num_rows() > 0);
  RedsRelabeling out;
  out.metamodel = FitMetamodel(d, config, DeriveSeed(seed, 1));
  out.new_data = LabelPoints(*out.metamodel, unlabeled_x, d.num_cols(),
                             config.probability_labels);
  return out;
}

RedsStreamedRelabeling RedsRelabelStreamed(const Dataset& d,
                                           const RedsConfig& config,
                                           uint64_t seed) {
  assert(d.num_rows() > 0 && config.num_new_points > 0);
  RedsStreamedRelabeling out;
  // Shared seed derivation with RedsRelabel: sub-stream 1 trains the
  // metamodel, sub-stream 2 drives the sampler, so the two paths produce
  // the identical metamodel and the identical point sequence. With preset
  // labels (an engine relabel-stream cache hit covering every row) the
  // metamodel is never consulted, so the fit is skipped outright and
  // out.metamodel stays null.
  const bool labels_preset =
      config.preset_stream_labels != nullptr &&
      config.preset_stream_labels->size() ==
          static_cast<size_t>(config.num_new_points);
  if (!labels_preset) {
    out.metamodel = FitMetamodel(d, config, DeriveSeed(seed, 1));
  }
  sampling::PointSampler sampler =
      config.sampler ? config.sampler : sampling::MakeUniformSampler();
  out.new_data = std::make_unique<RedsRelabelSource>(
      out.metamodel, std::move(sampler), d.num_cols(), config.num_new_points,
      DeriveSeed(seed, 2), config.probability_labels,
      config.cache_stream_labels,
      labels_preset ? config.preset_stream_labels : nullptr,
      config.stream_labels_sink);
  return out;
}

}  // namespace reds
