#include "core/reds.h"

#include <cassert>

#include "util/rng.h"

namespace reds {

namespace {

std::shared_ptr<const ml::Metamodel> FitMetamodel(const Dataset& d,
                                                  const RedsConfig& config,
                                                  uint64_t seed) {
  if (config.metamodel_provider) {
    return config.metamodel_provider(d, config.metamodel,
                                     config.tune_metamodel, config.budget,
                                     config.split_backend, seed);
  }
  return ml::FitMetamodel(config.metamodel, d, seed, config.tune_metamodel,
                          config.budget, nullptr, nullptr,
                          config.split_backend);
}

Dataset LabelPoints(const ml::Metamodel& model, const std::vector<double>& x,
                    int num_cols, bool probability_labels) {
  assert(x.size() % static_cast<size_t>(num_cols) == 0);
  const int n = static_cast<int>(x.size()) / num_cols;
  Dataset out(num_cols);
  out.Reserve(n);
  for (int i = 0; i < n; ++i) {
    const double* row = x.data() + static_cast<size_t>(i) * num_cols;
    const double p = model.PredictProb(row);
    out.AddRow(row, probability_labels ? p : (p > 0.5 ? 1.0 : 0.0));
  }
  return out;
}

}  // namespace

RedsRelabeling RedsRelabel(const Dataset& d, const RedsConfig& config,
                           uint64_t seed) {
  assert(d.num_rows() > 0 && config.num_new_points > 0);
  RedsRelabeling out;
  out.metamodel = FitMetamodel(d, config, DeriveSeed(seed, 1));

  const int m = d.num_cols();
  sampling::PointSampler sampler =
      config.sampler ? config.sampler : sampling::MakeUniformSampler();
  Rng rng(DeriveSeed(seed, 2));
  std::vector<double> x(static_cast<size_t>(config.num_new_points) *
                        static_cast<size_t>(m));
  for (int i = 0; i < config.num_new_points; ++i) {
    sampler(&rng, m, x.data() + static_cast<size_t>(i) * m);
  }
  out.new_data =
      LabelPoints(*out.metamodel, x, m, config.probability_labels);
  return out;
}

RedsRelabeling RedsRelabelPoints(const Dataset& d,
                                 const std::vector<double>& unlabeled_x,
                                 const RedsConfig& config, uint64_t seed) {
  assert(d.num_rows() > 0);
  RedsRelabeling out;
  out.metamodel = FitMetamodel(d, config, DeriveSeed(seed, 1));
  out.new_data = LabelPoints(*out.metamodel, unlabeled_x, d.num_cols(),
                             config.probability_labels);
  return out;
}

}  // namespace reds
