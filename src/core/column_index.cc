#include "core/column_index.h"

#include <algorithm>
#include <limits>

namespace reds {

std::shared_ptr<const ColumnIndex> ColumnIndex::Build(const Dataset& d) {
  auto index = std::shared_ptr<ColumnIndex>(new ColumnIndex());
  const int n = d.num_rows();
  const int m = d.num_cols();
  index->num_rows_ = n;
  index->num_cols_ = m;
  index->columns_.resize(static_cast<size_t>(m));
  index->sorted_.resize(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    std::vector<double>& col = index->columns_[static_cast<size_t>(j)];
    col.resize(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) col[static_cast<size_t>(r)] = d.x(r, j);

    std::vector<int>& order = index->sorted_[static_cast<size_t>(j)];
    order.resize(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) order[static_cast<size_t>(r)] = r;
    std::sort(order.begin(), order.end(), [&col](int a, int b) {
      const double va = col[static_cast<size_t>(a)];
      const double vb = col[static_cast<size_t>(b)];
      return va < vb || (va == vb && a < b);
    });
  }
  return index;
}

int LowerBoundRank(const std::vector<int>& sorted_rows,
                   const std::vector<double>& column, double v) {
  const auto it = std::partition_point(
      sorted_rows.begin(), sorted_rows.end(),
      [&](int r) { return column[static_cast<size_t>(r)] < v; });
  return static_cast<int>(it - sorted_rows.begin());
}

int UpperBoundRank(const std::vector<int>& sorted_rows,
                   const std::vector<double>& column, double v) {
  const auto it = std::partition_point(
      sorted_rows.begin(), sorted_rows.end(),
      [&](int r) { return column[static_cast<size_t>(r)] <= v; });
  return static_cast<int>(it - sorted_rows.begin());
}

int ColumnIndex::LowerBoundRank(int j, double v) const {
  return reds::LowerBoundRank(sorted_rows(j), column(j), v);
}

int ColumnIndex::UpperBoundRank(int j, double v) const {
  return reds::UpperBoundRank(sorted_rows(j), column(j), v);
}

std::vector<int> CountBoundViolations(const ColumnIndex& index,
                                      const Box& box) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const int n = index.num_rows();
  std::vector<int> viol(static_cast<size_t>(n), 0);
  for (int j = 0; j < index.num_cols(); ++j) {
    const double lo = box.lo(j);
    const double hi = box.hi(j);
    if (lo == -kInf && hi == kInf) continue;
    const std::vector<double>& col = index.column(j);
    for (int r = 0; r < n; ++r) {
      const double x = col[static_cast<size_t>(r)];
      if (x < lo || x > hi) ++viol[static_cast<size_t>(r)];
    }
  }
  return viol;
}

}  // namespace reds
