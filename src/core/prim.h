// PRIM: the Patient Rule Induction Method (Friedman & Fisher 1999), peeling
// phase as in the paper's Algorithm 1 plus an optional pasting phase. Each
// run yields a sequence of nested boxes (the peeling trajectory); the
// returned prefix ends at the box with the highest validation precision.
#ifndef REDS_CORE_PRIM_H_
#define REDS_CORE_PRIM_H_

#include <vector>

#include "core/box.h"
#include "core/column_index.h"
#include "core/dataset.h"
#include "core/quality.h"

namespace reds {

struct PrimConfig {
  double alpha = 0.05;   // peeling fraction removed per step
  int min_points = 20;   // mp: peel while train and val boxes hold >= mp points
  bool paste = false;    // run the pasting phase on the selected box
  double paste_alpha = 0.01;  // expansion fraction per pasting step
};

/// Output of one PRIM run: the nested box sequence with train/validation
/// precision and recall per box.
struct PrimResult {
  std::vector<Box> boxes;  // boxes[0] is unbounded; nested thereafter
  std::vector<PrPoint> train_curve;
  std::vector<PrPoint> val_curve;
  int best_val_index = 0;  // box with max validation precision

  /// The paper's "returned sequence": boxes[0 .. best_val_index].
  std::vector<Box> ReturnedBoxes() const;
  /// The paper's "last box" (maximum validation precision).
  const Box& BestBox() const { return boxes[static_cast<size_t>(best_val_index)]; }
};

/// Runs PRIM peeling with `train` guiding the cuts and `val` both limiting
/// the depth (min_points) and selecting the final box. Targets may be
/// fractional (REDS probability labels). The paper's experiments use
/// val == train.
///
/// The peel candidates are found by rank selection on per-column sorted
/// permutations (an in-box subset of `train_index`, maintained incrementally
/// across peels) instead of per-candidate rescans. Pass a prebuilt index of
/// `train` to amortize it across runs; when null, a private one is built.
PrimResult RunPrim(const Dataset& train, const Dataset& val,
                   const PrimConfig& config,
                   const ColumnIndex* train_index = nullptr);

/// The original scalar implementation (full rescan per peel candidate).
/// Kept as the golden reference for equivalence tests and as the baseline
/// the perf harness measures speedups against. Same results as RunPrim.
PrimResult RunPrimReference(const Dataset& train, const Dataset& val,
                            const PrimConfig& config);

}  // namespace reds

#endif  // REDS_CORE_PRIM_H_
