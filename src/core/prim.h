// PRIM: the Patient Rule Induction Method (Friedman & Fisher 1999), peeling
// phase as in the paper's Algorithm 1 plus an optional pasting phase. Each
// run yields a sequence of nested boxes (the peeling trajectory); the
// returned prefix ends at the box with the highest validation precision.
#ifndef REDS_CORE_PRIM_H_
#define REDS_CORE_PRIM_H_

#include <vector>

#include "core/binned_index.h"
#include "core/box.h"
#include "core/column_index.h"
#include "core/dataset.h"
#include "core/quality.h"

namespace reds {

/// Peel-candidate kernel.
///   kSorted: rank selection on per-column sorted in-box views, compacted
///            through a bitmask on every peel (the PR 2 kernel).
///   kBinned: per-dimension in-box bin histograms over a BinnedIndex locate
///            each peel bin in O(bins); an exact scan inside that bin
///            refines the boundary, and applying a peel touches only the
///            removed rows (O(removed x M)) instead of compacting every
///            view (O(N x M)). Produces bit-identical box sequences.
enum class PrimPeelBackend { kSorted, kBinned };

struct PrimConfig {
  double alpha = 0.05;   // peeling fraction removed per step
  int min_points = 20;   // mp: peel while train and val boxes hold >= mp points
  bool paste = false;    // run the pasting phase on the selected box
  double paste_alpha = 0.01;  // expansion fraction per pasting step
  PrimPeelBackend backend = PrimPeelBackend::kBinned;
  /// Evaluate the 2M per-dimension peel candidates on a thread pool when
  /// > 1 and the in-box workload is large enough (kPrimParallelMinWork);
  /// candidate selection stays in dimension order, so the result is
  /// identical to the serial evaluation.
  int threads = 1;
};

/// In-box points x dimensions below which parallel candidate evaluation is
/// skipped even when PrimConfig::threads > 1 (dispatch would dominate).
inline constexpr double kPrimParallelMinWork = 32768.0;

/// Output of one PRIM run: the nested box sequence with train/validation
/// precision and recall per box.
struct PrimResult {
  std::vector<Box> boxes;  // boxes[0] is unbounded; nested thereafter
  std::vector<PrPoint> train_curve;
  std::vector<PrPoint> val_curve;
  int best_val_index = 0;  // box with max validation precision

  /// The paper's "returned sequence": boxes[0 .. best_val_index].
  std::vector<Box> ReturnedBoxes() const;
  /// The paper's "last box" (maximum validation precision).
  const Box& BestBox() const { return boxes[static_cast<size_t>(best_val_index)]; }
};

/// Runs PRIM peeling with `train` guiding the cuts and `val` both limiting
/// the depth (min_points) and selecting the final box. Targets may be
/// fractional (REDS probability labels). The paper's experiments use
/// val == train.
///
/// The peel candidates are found through the backend selected in `config`
/// (sorted in-box views or binned histograms + exact in-bin refinement;
/// identical results either way). Pass prebuilt indexes of `train` to
/// amortize them across runs; when null, private ones are built
/// (`train_binned` is only consulted by the kBinned backend).
PrimResult RunPrim(const Dataset& train, const Dataset& val,
                   const PrimConfig& config,
                   const ColumnIndex* train_index = nullptr,
                   const BinnedIndex* train_binned = nullptr);

/// The original scalar implementation (full rescan per peel candidate).
/// Kept as the golden reference for equivalence tests and as the baseline
/// the perf harness measures speedups against. Same results as RunPrim.
PrimResult RunPrimReference(const Dataset& train, const Dataset& val,
                            const PrimConfig& config);

/// PRIM peeling entirely on the quantized plane: candidates, counts and
/// removed-mass sums come from BinnedIndex codes, per-bin aggregates and
/// the index's own code-ordered permutation -- no raw matrix and no
/// ColumnIndex, so it runs on streamed datasets whose doubles were never
/// materialized (BinnedIndex::BuildStreamed). Box bounds snap to bin
/// boundaries (bin_first for lower bounds, bin_last for upper bounds):
/// bit-identical to RunPrim whenever every feature has at most max_bins
/// distinct values (each bin is one value), within the sketch's rank-error
/// bound otherwise. `y` holds one label per row.
///
/// `val` selects the box exactly as RunPrim's validation data does: it
/// limits the peeling depth (min_points) and picks the returned box by
/// validation precision. Null means D_val = D (the paper's default, and
/// the only option when nothing but the stream exists); the streamed REDS
/// driver passes the original simulated sample here, so box selection is
/// grounded in real labels just like the materialized path's
/// RunPrim(D_new, D). It runs the same peeling loop as RunPrim (including
/// block-parallel candidate evaluation under PrimConfig::threads); only
/// the pasting phase, which needs raw training values, is unsupported.
/// Requires binned.has_sorted_rows().
PrimResult RunPrimStreamed(const BinnedIndex& binned,
                           const std::vector<double>& y,
                           const PrimConfig& config,
                           const Dataset* val = nullptr);

}  // namespace reds

#endif  // REDS_CORE_PRIM_H_
