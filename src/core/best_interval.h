// The BestInterval (BI) subgroup-discovery algorithm (Mampaey et al. 2012;
// paper Algorithm 3): beam search that re-optimizes one dimension at a time
// with the linear-time BestIntervalWRAcc subroutine.
//
// Key identity: WRAcc(B) = (1/N) * sum_{i in B} (y_i - N+/N), so the best
// interval along one dimension (others fixed) is a maximum-sum contiguous
// run over the in-box points sorted by that coordinate, with ties grouped --
// Kadane's algorithm in O(n) after sorting (paper Section 7).
#ifndef REDS_CORE_BEST_INTERVAL_H_
#define REDS_CORE_BEST_INTERVAL_H_

#include <vector>

#include "core/box.h"
#include "core/column_index.h"
#include "core/dataset.h"

namespace reds {

struct BiConfig {
  int beam_size = 1;       // bs: candidate boxes kept per iteration
  int max_restricted = -1; // m: max restricted inputs; -1: all M
  int max_iterations = 64; // safety cap on the while loop
};

struct BiResult {
  Box box;
  double wracc = 0.0;  // on the training data
};

/// Runs BI on d (targets may be fractional) and returns the box with the
/// highest WRAcc. The beam's per-dimension refinements enumerate candidate
/// points through per-column sorted permutations and a violation-count
/// array (one O(N M) pass per beam box) instead of an O(N M) scan per
/// dimension. Pass a prebuilt index of `d` to amortize it across runs; when
/// null, a private one is built.
BiResult RunBi(const Dataset& d, const BiConfig& config,
               const ColumnIndex* index = nullptr);

/// The original per-dimension-rescan implementation; golden reference for
/// equivalence tests and the perf harness baseline. Same results as RunBi.
BiResult RunBiReference(const Dataset& d, const BiConfig& config);

/// BestIntervalWRAcc: given a box, returns a copy with dimension `dim`'s
/// bounds replaced by the WRAcc-optimal interval (bounds at data values;
/// sides touching the in-box extremes become unbounded). Exposed for tests
/// against a brute-force reference.
Box BestIntervalForDimension(const Dataset& d, const Box& box, int dim);

/// As BestIntervalForDimension, but gathers the "inside when `dim` is
/// ignored" points from the sorted permutation of `dim` guarded by
/// `viol = CountBoundViolations(index, box)`. Identical output.
Box BestIntervalForDimensionIndexed(const Dataset& d, const ColumnIndex& index,
                                    const Box& box, int dim,
                                    const std::vector<int>& viol);

/// WRAcc of a box on d (= (n+ - n * N+/N) / N).
double BoxWRAcc(const Dataset& d, const Box& box);

}  // namespace reds

#endif  // REDS_CORE_BEST_INTERVAL_H_
