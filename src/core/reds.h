// REDS (paper Algorithm 4): train a metamodel on the N simulated examples,
// draw L fresh points from the same input distribution, label them with the
// metamodel (hard labels via bnd, or probabilities for the "p" variants),
// and hand the relabeled dataset to any scenario-discovery algorithm.
#ifndef REDS_CORE_REDS_H_
#define REDS_CORE_REDS_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "core/dataset.h"
#include "core/dataset_source.h"
#include "ml/histogram.h"
#include "ml/model.h"
#include "ml/tuning.h"
#include "sampling/design.h"

namespace reds {

/// Supplies the trained metamodel for a REDS run. The discovery engine
/// installs one backed by its cross-request cache; when empty, REDS fits
/// inline with TuneAndFit/FitDefault. `backend` selects the tree learners'
/// split-search kernel and -- like `growth`/`max_leaves`, the tree growth
/// order -- is part of the trained model's identity.
using MetamodelProvider = std::function<std::shared_ptr<const ml::Metamodel>(
    const Dataset& train, ml::MetamodelKind kind, bool tune,
    ml::TuningBudget budget, ml::SplitBackend backend,
    ml::GrowthPolicy growth, int max_leaves, uint64_t seed)>;

struct RedsConfig {
  ml::MetamodelKind metamodel = ml::MetamodelKind::kGbt;
  bool tune_metamodel = true;         // caret-style CV grid (paper 8.4.3)
  ml::TuningBudget budget = ml::TuningBudget::kQuick;
  /// Split search of the tree metamodels ("f"/"x"). Presorted is exact;
  /// histogram trades exactness beyond 256 distinct values per feature for
  /// O(bins) split scans.
  ml::SplitBackend split_backend = ml::SplitBackend::kPresorted;
  /// Tree growth order of the tree metamodels (histogram backend only; see
  /// ml/histogram.h). Part of the trained model's identity.
  ml::GrowthPolicy tree_growth = ml::GrowthPolicy::kDepthWise;
  int tree_max_leaves = 0;  // leaf-wise cap per tree; 0 = unlimited
  bool probability_labels = false;    // "p": y_new = f_am(x) in [0,1]
  int num_new_points = 100000;        // L
  sampling::PointSampler sampler;     // defaults to i.i.d. uniform
  MetamodelProvider metamodel_provider;  // optional engine cache hook
  /// Streamed path only: cache the O(L) label vector produced by the
  /// stream's first pass so every later pass (BuildStreamed's coding pass)
  /// replays the sampler RNG for x but never re-runs the metamodel -- the
  /// two labeling passes fuse into one. Never caches the L x M point
  /// matrix. Off restores the pure replay behavior (each pass labels).
  bool cache_stream_labels = true;
  /// Streamed path only: labels of this exact stream computed by an
  /// earlier run (engine relabel-stream cache). When set, the stream
  /// serves these labels directly -- zero labeling passes -- and
  /// RedsRelabelStreamed skips the metamodel fit entirely (its result
  /// carries a null metamodel).
  std::shared_ptr<const std::vector<double>> preset_stream_labels;
  /// Streamed path only: invoked once, with the complete label vector,
  /// when a cold stream finishes labeling all num_new_points rows (the
  /// engine stores it under the relabel-stream cache key). Requires
  /// cache_stream_labels.
  std::function<void(std::shared_ptr<const std::vector<double>>)>
      stream_labels_sink;
};

/// The relabeled dataset plus the trained metamodel (kept for inspection /
/// semi-supervised reuse; shared so a cache can hand out one model to many
/// concurrent requests).
struct RedsRelabeling {
  Dataset new_data;
  std::shared_ptr<const ml::Metamodel> metamodel;
};

/// Steps 1-3 of Algorithm 4: fit the metamodel on d and produce D_new with
/// L freshly sampled, metamodel-labeled points.
RedsRelabeling RedsRelabel(const Dataset& d, const RedsConfig& config,
                           uint64_t seed);

/// Semi-supervised variant (paper Section 6.1/9.4): instead of sampling new
/// points, label the given unlabeled inputs (row-major, num_cols columns)
/// with the metamodel trained on d.
RedsRelabeling RedsRelabelPoints(const Dataset& d,
                                 const std::vector<double>& unlabeled_x,
                                 const RedsConfig& config, uint64_t seed);

/// The one place REDS label semantics live: probability labels ("p"
/// variants) return f_am(x) in [0,1]; hard labels threshold at 0.5. Every
/// relabeling path -- materialized, point-wise, and streamed -- labels
/// through this helper, so the paths cannot drift apart.
double MetamodelLabel(const ml::Metamodel& model, const double* x,
                      bool probability_labels);

/// Streamed REDS relabeling: the metamodel is obtained exactly as in
/// RedsRelabel (provider hook or inline fit, same seed derivation), but
/// D_new is returned as a DatasetSource that samples fresh points and
/// labels them with the metamodel block by block. The row stream is
/// bit-identical to RedsRelabel's materialized new_data -- one sequential
/// sampler RNG seeded from the shared derivation, replayed on Reset() --
/// so streamed and in-memory REDS quantize to identical bins in the
/// exact-pack regime while only O(block) relabeled doubles ever exist.
/// `metamodel` is null when preset_stream_labels covered the whole stream:
/// the labels were served from cache, so no model was fit or consulted.
struct RedsStreamedRelabeling {
  std::unique_ptr<DatasetSource> new_data;  // owns sampler state + labeling
  std::shared_ptr<const ml::Metamodel> metamodel;
};

RedsStreamedRelabeling RedsRelabelStreamed(const Dataset& d,
                                           const RedsConfig& config,
                                           uint64_t seed);

}  // namespace reds

#endif  // REDS_CORE_REDS_H_
