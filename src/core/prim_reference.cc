// Reference scalar PRIM: the original full-rescan implementation, kept as
// the golden baseline the sorted-index kernel in prim.cc is verified against
// (tests/prim_equivalence_test.cc) and benchmarked against
// (bench/bench_perf_kernels.cc). Not used on any production path.
#include "core/prim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace reds {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A candidate peel: restrict dimension `dim` on one side to `bound`.
struct Peel {
  int dim = -1;
  bool low_side = true;   // true: raise lo to `bound`; false: drop hi
  double bound = 0.0;
  double removed_n = 0.0;
  double removed_pos = 0.0;
  double precision_after = -1.0;
};

// Values of in-box points along one dimension.
void GatherColumn(const Dataset& d, const std::vector<int>& rows, int dim,
                  std::vector<double>* out) {
  out->clear();
  out->reserve(rows.size());
  for (int r : rows) out->push_back(d.x(r, dim));
}

// Smallest element strictly greater than v, or +inf if none.
double NextDistinctAbove(const std::vector<double>& vals, double v) {
  double best = kInf;
  for (double x : vals) {
    if (x > v && x < best) best = x;
  }
  return best;
}

// Largest element strictly smaller than v, or -inf if none.
double NextDistinctBelow(const std::vector<double>& vals, double v) {
  double best = -kInf;
  for (double x : vals) {
    if (x < v && x > best) best = x;
  }
  return best;
}

// Builds the low- or high-side candidate peel for one dimension, cutting off
// roughly an alpha share of the in-box train points. Returns dim = -1 when no
// valid cut exists (e.g. all values equal).
Peel MakeCandidate(const Dataset& train, const std::vector<int>& in_rows,
                   const BoxStats& in_stats, int dim, bool low_side,
                   double alpha, std::vector<double>* scratch) {
  Peel peel;
  const int n = static_cast<int>(in_rows.size());
  const int k = std::max(1, static_cast<int>(std::floor(alpha * n)));
  if (k >= n) return peel;  // would empty the box

  GatherColumn(train, in_rows, dim, scratch);
  std::vector<double>& vals = *scratch;
  double bound;
  if (low_side) {
    std::nth_element(vals.begin(), vals.begin() + k, vals.end());
    bound = vals[static_cast<size_t>(k)];  // (k+1)-th smallest
  } else {
    std::nth_element(vals.begin(), vals.begin() + (n - 1 - k), vals.end());
    bound = vals[static_cast<size_t>(n - 1 - k)];  // (k+1)-th largest
  }

  // Count what the cut removes; points equal to the bound stay inside.
  auto count_removed = [&](double b) {
    double rn = 0.0, rp = 0.0;
    for (int r : in_rows) {
      const double x = train.x(r, dim);
      if (low_side ? x < b : x > b) {
        rn += 1.0;
        rp += train.y(r);
      }
    }
    peel.removed_n = rn;
    peel.removed_pos = rp;
  };
  count_removed(bound);

  if (peel.removed_n == 0.0) {
    // Ties swallowed the whole cut: move the bound past the tied block.
    bound = low_side ? NextDistinctAbove(vals, bound)
                     : NextDistinctBelow(vals, bound);
    if (!std::isfinite(bound)) return peel;  // dimension is constant in box
    count_removed(bound);
  }
  if (peel.removed_n >= n) return peel;  // would empty the box

  peel.dim = dim;
  peel.low_side = low_side;
  peel.bound = bound;
  peel.precision_after =
      (in_stats.n_pos - peel.removed_pos) / (in_stats.n - peel.removed_n);
  return peel;
}

// Drops rows violating the peel from `rows`, updating `stats`.
void ApplyPeel(const Dataset& d, const Peel& peel, std::vector<int>* rows,
               BoxStats* stats) {
  size_t kept = 0;
  for (size_t i = 0; i < rows->size(); ++i) {
    const int r = (*rows)[i];
    const double x = d.x(r, peel.dim);
    const bool removed = peel.low_side ? x < peel.bound : x > peel.bound;
    if (removed) {
      stats->n -= 1.0;
      stats->n_pos -= d.y(r);
    } else {
      (*rows)[kept++] = r;
    }
  }
  rows->resize(kept);
}

// One pasting expansion candidate: move a bound outward to re-admit roughly
// a paste_alpha share of the current box population.
struct Paste {
  int dim = -1;
  bool low_side = true;
  double bound = 0.0;
  double precision_after = -1.0;
  double added_n = 0.0;
};

}  // namespace

PrimResult RunPrimReference(const Dataset& train, const Dataset& val,
                            const PrimConfig& config) {
  assert(train.num_cols() == val.num_cols());
  assert(train.num_rows() > 0 && val.num_rows() > 0);
  const int dims = train.num_cols();
  const double total_train_pos = train.TotalPositive();
  const double total_val_pos = val.TotalPositive();

  PrimResult result;
  Box box = Box::Unbounded(dims);

  std::vector<int> train_rows(static_cast<size_t>(train.num_rows()));
  std::vector<int> val_rows(static_cast<size_t>(val.num_rows()));
  for (int i = 0; i < train.num_rows(); ++i) train_rows[static_cast<size_t>(i)] = i;
  for (int i = 0; i < val.num_rows(); ++i) val_rows[static_cast<size_t>(i)] = i;
  BoxStats train_stats{static_cast<double>(train.num_rows()), total_train_pos};
  BoxStats val_stats{static_cast<double>(val.num_rows()), total_val_pos};

  auto record = [&]() {
    result.boxes.push_back(box);
    result.train_curve.push_back(
        {Recall(train_stats, total_train_pos), Precision(train_stats)});
    result.val_curve.push_back(
        {Recall(val_stats, total_val_pos), Precision(val_stats)});
  };
  record();

  std::vector<double> scratch;
  while (train_stats.n >= config.min_points && val_stats.n >= config.min_points) {
    Peel best;
    for (int j = 0; j < dims; ++j) {
      for (bool low : {true, false}) {
        const Peel cand = MakeCandidate(train, train_rows, train_stats, j, low,
                                        config.alpha, &scratch);
        if (cand.dim < 0) continue;
        // Highest precision wins; break ties patiently (remove fewer points).
        if (cand.precision_after > best.precision_after ||
            (cand.precision_after == best.precision_after &&
             best.dim >= 0 && cand.removed_n < best.removed_n)) {
          best = cand;
        }
      }
    }
    if (best.dim < 0) break;  // box is a single point block in every dimension

    if (best.low_side) {
      box.set_lo(best.dim, std::max(box.lo(best.dim), best.bound));
    } else {
      box.set_hi(best.dim, std::min(box.hi(best.dim), best.bound));
    }
    ApplyPeel(train, best, &train_rows, &train_stats);
    // Apply the same geometric cut to the validation points.
    {
      size_t kept = 0;
      for (size_t i = 0; i < val_rows.size(); ++i) {
        const int r = val_rows[i];
        const double x = val.x(r, best.dim);
        const bool removed = best.low_side ? x < best.bound : x > best.bound;
        if (removed) {
          val_stats.n -= 1.0;
          val_stats.n_pos -= val.y(r);
        } else {
          val_rows[kept++] = r;
        }
      }
      val_rows.resize(kept);
    }
    if (train_stats.n == 0.0 || val_stats.n == 0.0) {
      // Validation support vanished; the last recorded box stands.
      break;
    }
    record();
  }

  // Select the box with the highest validation precision; first occurrence
  // (the largest box) wins ties, favoring recall.
  int best_index = 0;
  double best_precision = -1.0;
  for (size_t i = 0; i < result.val_curve.size(); ++i) {
    if (result.val_curve[i].precision > best_precision) {
      best_precision = result.val_curve[i].precision;
      best_index = static_cast<int>(i);
    }
  }
  result.best_val_index = best_index;

  if (config.paste) {
    // Pasting phase (Friedman & Fisher): greedily re-expand the selected box
    // while train precision does not drop.
    Box pasted = result.BestBox();
    BoxStats stats = ComputeBoxStats(train, pasted);
    bool improved = true;
    while (improved && stats.n > 0.0) {
      improved = false;
      Paste best_paste;
      const int grow = std::max(
          1, static_cast<int>(std::floor(config.paste_alpha * stats.n)));
      for (int j = 0; j < dims; ++j) {
        for (bool low : {true, false}) {
          const double cur = low ? pasted.lo(j) : pasted.hi(j);
          if (!std::isfinite(cur)) continue;
          // Points outside only through this one bound.
          std::vector<std::pair<double, double>> outside;  // (x_j, y)
          for (int r = 0; r < train.num_rows(); ++r) {
            const double* x = train.row(r);
            bool inside_others = true;
            for (int jj = 0; jj < dims && inside_others; ++jj) {
              if (jj == j) continue;
              inside_others = x[jj] >= pasted.lo(jj) && x[jj] <= pasted.hi(jj);
            }
            if (!inside_others) continue;
            if (low ? x[j] < cur : x[j] > cur) outside.emplace_back(x[j], train.y(r));
          }
          if (outside.empty()) continue;
          std::sort(outside.begin(), outside.end());
          if (!low) std::reverse(outside.begin(), outside.end());
          const int take = std::min<int>(grow, static_cast<int>(outside.size()));
          double add_n = 0.0, add_pos = 0.0;
          for (int t = 0; t < take; ++t) {
            add_n += 1.0;
            add_pos += outside[static_cast<size_t>(t)].second;
          }
          const double new_bound = outside[static_cast<size_t>(take - 1)].first;
          const double precision_after =
              (stats.n_pos + add_pos) / (stats.n + add_n);
          if (precision_after > best_paste.precision_after) {
            best_paste = {j, low, new_bound, precision_after, add_n};
          }
        }
      }
      const double current_precision = Precision(stats);
      if (best_paste.dim >= 0 &&
          best_paste.precision_after >= current_precision &&
          best_paste.added_n > 0.0) {
        if (best_paste.low_side) {
          pasted.set_lo(best_paste.dim, best_paste.bound);
        } else {
          pasted.set_hi(best_paste.dim, best_paste.bound);
        }
        stats = ComputeBoxStats(train, pasted);
        improved = true;
      }
    }
    if (!(pasted == result.BestBox())) {
      result.boxes.push_back(pasted);
      const BoxStats tr = ComputeBoxStats(train, pasted);
      const BoxStats va = ComputeBoxStats(val, pasted);
      result.train_curve.push_back(
          {Recall(tr, total_train_pos), Precision(tr)});
      result.val_curve.push_back({Recall(va, total_val_pos), Precision(va)});
      result.best_val_index = static_cast<int>(result.boxes.size()) - 1;
    }
  }

  return result;
}

}  // namespace reds
