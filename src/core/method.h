// Method specs: the paper's naming convention (Section 8.2) parsed into
// runnable pipelines. "P"/"PB"/"BI" pick the subgroup-discovery family, a
// "c" suffix turns on hyperparameter cross-validation, a leading "R" wraps
// the method in REDS with metamodel "f"/"x"/"s" and optional probability
// labels "p". Examples: "Pc", "PBc", "BI5", "RPx", "RPcxp", "RBIcxp".
#ifndef REDS_CORE_METHOD_H_
#define REDS_CORE_METHOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/best_interval.h"
#include "core/bumping.h"
#include "core/prim.h"
#include "core/reds.h"
#include "ml/tuning.h"
#include "sampling/design.h"
#include "util/status.h"

namespace reds {

/// Parsed method name.
struct MethodSpec {
  enum class Family { kPrim, kPrimBumping, kBi };

  Family family = Family::kPrim;
  bool tuned = false;  // "c": cross-validated hyperparameters
  int beam_size = 1;   // "BI5" -> 5
  bool reds = false;   // "R" prefix
  ml::MetamodelKind metamodel = ml::MetamodelKind::kGbt;
  bool probability_labels = false;  // trailing "p"

  /// Parses names like "P", "Pc", "PB", "PBc", "BI", "BI5", "BIc", "RPf",
  /// "RPx", "RPs", "RPxp", "RPcxp", "RBIcfp", "RBIcxp".
  static Result<MethodSpec> Parse(const std::string& name);

  /// Renders back to the paper's naming convention.
  std::string ToName() const;

  bool IsPrimFamily() const { return family != Family::kBi; }
};

/// How the method layer ingests the data its SD algorithm scans.
///   kMaterialized: REDS relabeling produces a dense L x M double Dataset
///                  (the pre-PR 5 behavior), indexed and peeled in memory.
///   kStreamed:     REDS + PRIM flows RedsRelabelStreamed ->
///                  BinnedIndex::BuildStreamed -> RunPrimStreamed: the L
///                  relabeled points exist only as O(block) doubles in
///                  flight plus L x M uint8 codes, never as a double
///                  matrix. Bit-identical boxes to kMaterialized in the
///                  exact-pack regime (every sampled column <= 256 distinct
///                  values); within the sketch's rank-error bound
///                  otherwise. Methods without a streamed kernel (BI,
///                  bumping, and every non-REDS family) always materialize
///                  regardless of this knob.
enum class MethodDataPlan { kMaterialized, kStreamed };

/// Knobs shared by all methods in one experiment (paper Table 2 defaults).
struct RunOptions {
  double default_alpha = 0.05;  // peeling fraction when not tuned
  int min_points = 20;          // mp
  int bumping_q = 50;           // Q
  int l_prim = 100000;          // L when SD is PRIM-based
  int l_bi = 10000;             // L when SD is BI
  int cv_folds = 5;
  bool tune_metamodel = true;
  ml::TuningBudget budget = ml::TuningBudget::kQuick;
  /// Split-search kernel of the tree metamodels (REDS "f"/"x" variants),
  /// threaded through FitDefault and the tuning grid alike.
  ml::SplitBackend split_backend = ml::SplitBackend::kPresorted;
  /// Tree growth order of the tree metamodels (histogram backend only;
  /// see ml/histogram.h), threaded the same way as split_backend and part
  /// of every cached model's identity.
  ml::GrowthPolicy tree_growth = ml::GrowthPolicy::kDepthWise;
  int tree_max_leaves = 0;  // leaf-wise cap per tree; 0 = unlimited
  sampling::PointSampler sampler;  // REDS new-point distribution (default uniform)
  uint64_t seed = 0;
  /// Optional engine hook: REDS methods obtain their metamodel from this
  /// provider (e.g. the DiscoveryEngine's cross-request cache) instead of
  /// fitting inline.
  MetamodelProvider metamodel_provider;
  /// Optional engine hook: the dataset the SD algorithm scans is indexed
  /// through this provider (e.g. the DiscoveryEngine's fingerprint-keyed
  /// ColumnIndex cache) so a batch over the same data indexes it once.
  /// When empty, kernels build private indexes.
  ColumnIndexProvider column_index_provider;
  /// Optional engine hook for the quantized layer: PRIM's binned peeling
  /// obtains the dataset's BinnedIndex here (same fingerprint key as the
  /// ColumnIndex cache) so a batch quantizes once. When empty, kernels
  /// quantize privately.
  BinnedIndexProvider binned_index_provider;
  /// Data plan of the relabeled dataset; see MethodDataPlan. The default
  /// streams REDS + PRIM.
  MethodDataPlan data_plan = MethodDataPlan::kStreamed;
  /// Rows per block on the streamed plan (both the relabeling generator
  /// and BuildStreamed pull this granularity). Peak relabeled-double
  /// residency is O(stream_block_rows x M).
  int stream_block_rows = 8192;
  /// Identity of a custom `sampler` for the relabel-stream cache key. A
  /// custom sampler is an opaque function, so the streamed relabel cache
  /// is disabled for it unless this names it; the default uniform sampler
  /// needs no id. Two different samplers must never share an id.
  std::string sampler_id;
  /// Optional engine hook: looks up a finished streamed REDS relabeling
  /// (quantized index + labels) by cache key. A hit means the job replays
  /// neither the sampler nor the metamodel nor the quantization -- zero
  /// labeling passes, zero code rebuilds. Null on miss.
  std::function<std::shared_ptr<const StreamedDataset>(
      uint64_t key, int expect_rows, int expect_cols)>
      streamed_relabel_lookup;
  /// Optional engine hook: stores a cold run's streamed relabeling under
  /// its cache key once built.
  std::function<void(uint64_t key, std::shared_ptr<const StreamedDataset>)>
      streamed_relabel_store;
};

/// What a method run produces: a trajectory of boxes to assess (nested
/// sequence for PRIM, Pareto set for bumping, a single box for BI) and the
/// "last"/selected box the per-box metrics use.
struct MethodOutput {
  std::vector<Box> trajectory;
  Box last_box;
  double chosen_alpha = 0.0;  // PRIM family
  int chosen_m = 0;           // bumping / BI
  double runtime_seconds = 0.0;
};

/// A method run, resolved: hyperparameters tuned on the original data and
/// the data plan decided. PlanMethod performs the tune step (always on D,
/// never on the relabeled D_new -- paper Section 8.4.3); ExecuteMethodPlan
/// performs relabel -> index -> discover. RunMethod is the composition;
/// the split lets callers (and tests) run the expensive tuning once and
/// execute the same plan under different data plans.
struct MethodPlan {
  MethodSpec spec;
  double alpha = 0.05;  // PRIM family peeling fraction (tuned or default)
  int m = 0;            // bumping / BI restriction budget (tuned or M)
  /// True when execution streams the relabeled data (REDS + plain PRIM
  /// under MethodDataPlan::kStreamed); everything else materializes.
  bool streamed_relabel = false;
};

/// Tune step: resolves hyperparameters (CV on D for the "c" variants) and
/// the data plan.
MethodPlan PlanMethod(const MethodSpec& spec, const Dataset& train,
                      const RunOptions& options);

/// Relabel -> index -> discover for a resolved plan. On the streamed plan
/// the relabeled points flow RedsRelabelStreamed -> BuildStreamed ->
/// RunPrimStreamed (validated on `train`, exactly like the materialized
/// path's RunPrim(D_new, D)) and the dense relabeled matrix never exists.
MethodOutput ExecuteMethodPlan(const MethodPlan& plan, const Dataset& train,
                               const RunOptions& options);

/// Runs the method on `train` (D_val = D as in the paper's experiments):
/// PlanMethod + ExecuteMethodPlan + wall-time accounting.
MethodOutput RunMethod(const MethodSpec& spec, const Dataset& train,
                       const RunOptions& options);

/// Runs a method directly on streamed, already-quantized training data --
/// the fully streamed entry point for sources too large to materialize
/// (the engine uses it for DatasetSource requests). Supported specs: the
/// untuned plain PRIM family ("P"); everything else needs raw doubles
/// (tuning folds, metamodel training, BI/bumping scans) and must go
/// through RunMethod on a materialized dataset. Throws
/// std::invalid_argument for unsupported specs. `binned` must carry its
/// own permutation (BuildStreamed output); `y` holds one label per row.
MethodOutput RunMethodOnStream(const MethodSpec& spec,
                               const BinnedIndex& binned,
                               const std::vector<double>& y,
                               const RunOptions& options);

/// Cross-validates the peeling fraction for plain PRIM over the paper's grid
/// {0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2}, maximizing held-out PR AUC.
double CrossValidateAlpha(const Dataset& d, const RunOptions& options,
                          uint64_t seed);

/// The paper's m grid {M - k * ceil(M/6) : k >= 0, value > 0}.
std::vector<int> MGrid(int num_inputs);

}  // namespace reds

#endif  // REDS_CORE_METHOD_H_
