// Method specs: the paper's naming convention (Section 8.2) parsed into
// runnable pipelines. "P"/"PB"/"BI" pick the subgroup-discovery family, a
// "c" suffix turns on hyperparameter cross-validation, a leading "R" wraps
// the method in REDS with metamodel "f"/"x"/"s" and optional probability
// labels "p". Examples: "Pc", "PBc", "BI5", "RPx", "RPcxp", "RBIcxp".
#ifndef REDS_CORE_METHOD_H_
#define REDS_CORE_METHOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/best_interval.h"
#include "core/bumping.h"
#include "core/prim.h"
#include "core/reds.h"
#include "ml/tuning.h"
#include "sampling/design.h"
#include "util/status.h"

namespace reds {

/// Parsed method name.
struct MethodSpec {
  enum class Family { kPrim, kPrimBumping, kBi };

  Family family = Family::kPrim;
  bool tuned = false;  // "c": cross-validated hyperparameters
  int beam_size = 1;   // "BI5" -> 5
  bool reds = false;   // "R" prefix
  ml::MetamodelKind metamodel = ml::MetamodelKind::kGbt;
  bool probability_labels = false;  // trailing "p"

  /// Parses names like "P", "Pc", "PB", "PBc", "BI", "BI5", "BIc", "RPf",
  /// "RPx", "RPs", "RPxp", "RPcxp", "RBIcfp", "RBIcxp".
  static Result<MethodSpec> Parse(const std::string& name);

  /// Renders back to the paper's naming convention.
  std::string ToName() const;

  bool IsPrimFamily() const { return family != Family::kBi; }
};

/// Knobs shared by all methods in one experiment (paper Table 2 defaults).
struct RunOptions {
  double default_alpha = 0.05;  // peeling fraction when not tuned
  int min_points = 20;          // mp
  int bumping_q = 50;           // Q
  int l_prim = 100000;          // L when SD is PRIM-based
  int l_bi = 10000;             // L when SD is BI
  int cv_folds = 5;
  bool tune_metamodel = true;
  ml::TuningBudget budget = ml::TuningBudget::kQuick;
  /// Split-search kernel of the tree metamodels (REDS "f"/"x" variants),
  /// threaded through FitDefault and the tuning grid alike.
  ml::SplitBackend split_backend = ml::SplitBackend::kPresorted;
  sampling::PointSampler sampler;  // REDS new-point distribution (default uniform)
  uint64_t seed = 0;
  /// Optional engine hook: REDS methods obtain their metamodel from this
  /// provider (e.g. the DiscoveryEngine's cross-request cache) instead of
  /// fitting inline.
  MetamodelProvider metamodel_provider;
  /// Optional engine hook: the dataset the SD algorithm scans is indexed
  /// through this provider (e.g. the DiscoveryEngine's fingerprint-keyed
  /// ColumnIndex cache) so a batch over the same data indexes it once.
  /// When empty, kernels build private indexes.
  ColumnIndexProvider column_index_provider;
  /// Optional engine hook for the quantized layer: PRIM's binned peeling
  /// obtains the dataset's BinnedIndex here (same fingerprint key as the
  /// ColumnIndex cache) so a batch quantizes once. When empty, kernels
  /// quantize privately.
  BinnedIndexProvider binned_index_provider;
};

/// What a method run produces: a trajectory of boxes to assess (nested
/// sequence for PRIM, Pareto set for bumping, a single box for BI) and the
/// "last"/selected box the per-box metrics use.
struct MethodOutput {
  std::vector<Box> trajectory;
  Box last_box;
  double chosen_alpha = 0.0;  // PRIM family
  int chosen_m = 0;           // bumping / BI
  double runtime_seconds = 0.0;
};

/// Runs the method on `train` (D_val = D as in the paper's experiments).
MethodOutput RunMethod(const MethodSpec& spec, const Dataset& train,
                       const RunOptions& options);

/// Cross-validates the peeling fraction for plain PRIM over the paper's grid
/// {0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2}, maximizing held-out PR AUC.
double CrossValidateAlpha(const Dataset& d, const RunOptions& options,
                          uint64_t seed);

/// The paper's m grid {M - k * ceil(M/6) : k >= 0, value > 0}.
std::vector<int> MGrid(int num_inputs);

}  // namespace reds

#endif  // REDS_CORE_METHOD_H_
