// ColumnIndex: column-major copies of a dataset's input matrix plus one
// sorted permutation per column, computed once and shared (via shared_ptr)
// by every kernel that scans columns -- PRIM peeling, BestInterval, and the
// presorted CART/GBT split search. Building costs O(M N log N); afterwards
// rank selection, prefix counting, and ordered scans over any column are
// cache-friendly and sort-free.
#ifndef REDS_CORE_COLUMN_INDEX_H_
#define REDS_CORE_COLUMN_INDEX_H_

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "core/box.h"
#include "core/dataset.h"

namespace reds {

/// Immutable columnar view of a dataset's inputs. Thread-safe to share.
class ColumnIndex {
 public:
  /// Builds the columnar copy and per-column sorted permutations of d's
  /// input matrix (targets are not indexed: datasets differing only in y
  /// share an index).
  static std::shared_ptr<const ColumnIndex> Build(const Dataset& d);

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }

  /// Column j as a contiguous array of num_rows() values.
  const std::vector<double>& column(int j) const {
    assert(j >= 0 && j < num_cols_);
    return columns_[static_cast<size_t>(j)];
  }

  /// Row ids sorted ascending by column j's value; ties are ordered by row
  /// id, so the permutation is unique and deterministic.
  const std::vector<int>& sorted_rows(int j) const {
    assert(j >= 0 && j < num_cols_);
    return sorted_[static_cast<size_t>(j)];
  }

  /// Value of the rank-th smallest entry of column j (rank in [0, N)).
  double ValueAtRank(int j, int rank) const {
    const std::vector<int>& s = sorted_rows(j);
    assert(rank >= 0 && rank < static_cast<int>(s.size()));
    return columns_[static_cast<size_t>(j)][static_cast<size_t>(
        s[static_cast<size_t>(rank)])];
  }

  /// First rank whose value is >= v (the number of entries < v).
  int LowerBoundRank(int j, double v) const;

  /// First rank whose value is > v (the number of entries <= v).
  int UpperBoundRank(int j, double v) const;

 private:
  ColumnIndex() = default;

  int num_rows_ = 0;
  int num_cols_ = 0;
  std::vector<std::vector<double>> columns_;  // [col][row]
  std::vector<std::vector<int>> sorted_;      // [col][rank] -> row
};

/// First rank in `sorted_rows` (rows ascending by their `column` value)
/// whose value is >= v — the number of entries < v. Shared by the
/// full-index queries and PRIM's shrinking in-box views, so the boundary
/// semantics the equivalence proofs rely on live in one place.
int LowerBoundRank(const std::vector<int>& sorted_rows,
                   const std::vector<double>& column, double v);

/// First rank whose value is > v — the number of entries <= v.
int UpperBoundRank(const std::vector<int>& sorted_rows,
                   const std::vector<double>& column, double v);

/// Per-row count of box bounds the row violates: 0 = inside, 1 = outside
/// through exactly one bound. PRIM pasting and BestInterval use it to
/// enumerate "inside when one dimension is ignored" points in O(points
/// beyond that dimension's bounds) instead of an O(M) test per point.
std::vector<int> CountBoundViolations(const ColumnIndex& index, const Box& box);

/// Supplies a (possibly cached) ColumnIndex for a dataset. The discovery
/// engine installs one backed by its fingerprint-keyed cache so a batch of
/// method variants over the same data indexes it once; when empty, kernels
/// build a private index.
using ColumnIndexProvider =
    std::function<std::shared_ptr<const ColumnIndex>(const Dataset&)>;

}  // namespace reds

#endif  // REDS_CORE_COLUMN_INDEX_H_
