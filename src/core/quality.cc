#include "core/quality.h"

#include <algorithm>
#include <cassert>

namespace reds {

double Precision(const BoxStats& stats) {
  return stats.n > 0.0 ? stats.n_pos / stats.n : 0.0;
}

double Recall(const BoxStats& stats, double total_pos) {
  return total_pos > 0.0 ? stats.n_pos / total_pos : 0.0;
}

double WRAcc(const BoxStats& stats, double total_n, double total_pos) {
  if (stats.n <= 0.0 || total_n <= 0.0) return 0.0;
  return stats.n / total_n * (stats.n_pos / stats.n - total_pos / total_n);
}

double PrAuc(std::vector<PrPoint> points) {
  if (points.empty()) return 0.0;
  std::sort(points.begin(), points.end(), [](const PrPoint& a, const PrPoint& b) {
    return a.recall < b.recall ||
           (a.recall == b.recall && a.precision < b.precision);
  });
  // Collapse equal-recall runs to their best precision so the curve is a
  // function of recall.
  std::vector<PrPoint> unique;
  unique.reserve(points.size());
  for (const PrPoint& p : points) {
    if (!unique.empty() && unique.back().recall == p.recall) {
      unique.back().precision = p.precision;  // sorted: p has max precision
    } else {
      unique.push_back(p);
    }
  }
  points = std::move(unique);
  double auc = 0.0;
  // Left extension: constant precision from recall 0 to the first point.
  auc += points.front().recall * points.front().precision;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    const double dr = points[i + 1].recall - points[i].recall;
    auc += dr * 0.5 * (points[i].precision + points[i + 1].precision);
  }
  return auc;
}

double PrAucOnData(const std::vector<Box>& boxes, const Dataset& d) {
  const double total_pos = d.TotalPositive();
  std::vector<PrPoint> points;
  points.reserve(boxes.size());
  for (const Box& b : boxes) {
    const BoxStats stats = ComputeBoxStats(d, b);
    points.push_back({Recall(stats, total_pos), Precision(stats)});
  }
  return PrAuc(std::move(points));
}

double Consistency(const Box& a, const Box& b,
                   const std::vector<double>& domain_lo,
                   const std::vector<double>& domain_hi) {
  assert(a.dim() == b.dim());
  const double va = a.ClampedVolume(domain_lo, domain_hi);
  const double vb = b.ClampedVolume(domain_lo, domain_hi);
  const double vo = a.Intersect(b).ClampedVolume(domain_lo, domain_hi);
  const double vu = va + vb - vo;
  if (vu <= 0.0) return 1.0;  // both boxes empty -> identical scenarios
  return vo / vu;
}

double MeanPairwiseConsistency(const std::vector<Box>& boxes,
                               const std::vector<double>& domain_lo,
                               const std::vector<double>& domain_hi) {
  const size_t n = boxes.size();
  if (n < 2) return 1.0;
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      sum += Consistency(boxes[i], boxes[j], domain_lo, domain_hi);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

int NumIrrelevantRestricted(const Box& box, const std::vector<bool>& relevant) {
  assert(static_cast<int>(relevant.size()) == box.dim());
  int count = 0;
  for (int j = 0; j < box.dim(); ++j) {
    if (box.IsRestricted(j) && !relevant[static_cast<size_t>(j)]) ++count;
  }
  return count;
}

}  // namespace reds
