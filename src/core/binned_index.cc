#include "core/binned_index.h"

#include <algorithm>

namespace reds {

namespace {

// One maximal run of equal values in a sorted column: ranks [begin, end).
struct ValueRun {
  int begin = 0;
  int end = 0;
};

// Greedy quantile packing of value runs into at most max_bins bins. Each
// bin closes once it holds at least the current equal-share target
// (remaining rows / remaining bins), so skewed columns cannot starve later
// bins; runs are atomic, so ties never straddle a bin boundary. Returns the
// rank offsets of the bin starts (size num_bins + 1).
std::vector<int> PackRuns(const std::vector<ValueRun>& runs, int n,
                          int max_bins) {
  std::vector<int> begins;
  if (static_cast<int>(runs.size()) <= max_bins) {
    // One bin per distinct value: histogram kernels become exact.
    begins.reserve(runs.size() + 1);
    for (const ValueRun& run : runs) begins.push_back(run.begin);
    begins.push_back(n);
    return begins;
  }
  begins.push_back(0);
  int bins_left = max_bins;
  int rows_left = n;
  int current = 0;  // rows in the open bin
  for (const ValueRun& run : runs) {
    const int run_len = run.end - run.begin;
    // Close the open bin before this run when it already met its share and
    // further bins remain; the final bin absorbs everything left.
    if (bins_left > 1 && current > 0 &&
        static_cast<double>(current) * bins_left >= rows_left) {
      begins.push_back(run.begin);
      --bins_left;
      rows_left -= current;
      current = 0;
    }
    current += run_len;
  }
  begins.push_back(n);
  return begins;
}

}  // namespace

std::shared_ptr<const BinnedIndex> BinnedIndex::Build(const ColumnIndex& index,
                                                      int max_bins) {
  assert(max_bins >= 1 && max_bins <= kMaxBins);
  auto binned = std::shared_ptr<BinnedIndex>(new BinnedIndex());
  const int n = index.num_rows();
  const int m = index.num_cols();
  binned->num_rows_ = n;
  binned->num_cols_ = m;
  binned->max_bins_ = max_bins;
  binned->num_bins_.resize(static_cast<size_t>(m));
  binned->codes_.resize(static_cast<size_t>(m));
  binned->bin_first_.resize(static_cast<size_t>(m));
  binned->bin_last_.resize(static_cast<size_t>(m));
  binned->bin_begin_rank_.resize(static_cast<size_t>(m));

  std::vector<ValueRun> runs;
  for (int j = 0; j < m; ++j) {
    const std::vector<double>& col = index.column(j);
    const std::vector<int>& sorted = index.sorted_rows(j);

    runs.clear();
    int begin = 0;
    for (int r = 1; r <= n; ++r) {
      if (r == n || col[static_cast<size_t>(sorted[static_cast<size_t>(r)])] !=
                        col[static_cast<size_t>(
                            sorted[static_cast<size_t>(begin)])]) {
        runs.push_back({begin, r});
        begin = r;
      }
    }

    std::vector<int>& begins = binned->bin_begin_rank_[static_cast<size_t>(j)];
    begins = PackRuns(runs, n, max_bins);
    const int num_bins = static_cast<int>(begins.size()) - 1;
    binned->num_bins_[static_cast<size_t>(j)] = num_bins;

    std::vector<double>& first = binned->bin_first_[static_cast<size_t>(j)];
    std::vector<double>& last = binned->bin_last_[static_cast<size_t>(j)];
    std::vector<uint8_t>& codes = binned->codes_[static_cast<size_t>(j)];
    first.resize(static_cast<size_t>(num_bins));
    last.resize(static_cast<size_t>(num_bins));
    codes.resize(static_cast<size_t>(n));
    for (int b = 0; b < num_bins; ++b) {
      const int lo = begins[static_cast<size_t>(b)];
      const int hi = begins[static_cast<size_t>(b) + 1];
      first[static_cast<size_t>(b)] =
          col[static_cast<size_t>(sorted[static_cast<size_t>(lo)])];
      last[static_cast<size_t>(b)] =
          col[static_cast<size_t>(sorted[static_cast<size_t>(hi - 1)])];
      for (int r = lo; r < hi; ++r) {
        codes[static_cast<size_t>(sorted[static_cast<size_t>(r)])] =
            static_cast<uint8_t>(b);
      }
    }
  }
  return binned;
}

std::shared_ptr<const BinnedIndex> BinnedIndex::Build(const Dataset& d,
                                                      int max_bins) {
  return Build(*ColumnIndex::Build(d), max_bins);
}

int BinnedIndex::BinOf(int j, double v) const {
  const std::vector<double>& last = bin_last_[static_cast<size_t>(j)];
  const auto it = std::lower_bound(last.begin(), last.end(), v);
  if (it == last.end()) return num_bins(j) - 1;
  return static_cast<int>(it - last.begin());
}

}  // namespace reds
