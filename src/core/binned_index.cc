#include "core/binned_index.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "core/quantile_sketch.h"
#include "obs/trace.h"
#include "util/fingerprint.h"
#include "util/thread_pool.h"

namespace reds {

namespace {

// One maximal run of equal values in a sorted column: ranks [begin, end).
struct ValueRun {
  int begin = 0;
  int end = 0;
};

// Greedy quantile packing of value runs into at most max_bins bins. Each
// bin closes once it holds at least the current equal-share target
// (remaining rows / remaining bins), so skewed columns cannot starve later
// bins; runs are atomic, so ties never straddle a bin boundary. Returns the
// rank offsets of the bin starts (size num_bins + 1).
std::vector<int> PackRuns(const std::vector<ValueRun>& runs, int n,
                          int max_bins) {
  std::vector<int> begins;
  if (static_cast<int>(runs.size()) <= max_bins) {
    // One bin per distinct value: histogram kernels become exact.
    begins.reserve(runs.size() + 1);
    for (const ValueRun& run : runs) begins.push_back(run.begin);
    begins.push_back(n);
    return begins;
  }
  begins.push_back(0);
  int bins_left = max_bins;
  int rows_left = n;
  int current = 0;  // rows in the open bin
  for (const ValueRun& run : runs) {
    const int run_len = run.end - run.begin;
    // Close the open bin before this run when it already met its share and
    // further bins remain; the final bin absorbs everything left.
    if (bins_left > 1 && current > 0 &&
        static_cast<double>(current) * bins_left >= rows_left) {
      begins.push_back(run.begin);
      --bins_left;
      rows_left -= current;
      current = 0;
    }
    current += run_len;
  }
  begins.push_back(n);
  return begins;
}

void SketchBlock(const double* x, int rows, int m, int cap,
                 std::vector<ColumnSketch>* cols) {
  for (int j = 0; j < m; ++j) {
    ColumnSketch& col = (*cols)[static_cast<size_t>(j)];
    for (int r = 0; r < rows; ++r) {
      col.AddValue(x[static_cast<size_t>(r) * m + j], cap);
    }
  }
}

}  // namespace

// One-time spill of the exact pairs into the sketch on cap overflow. The
// sketch is seeded lazily via weighted inserts the moment the cap breaks,
// which summarizes the exact same multiset the eager feed would have --
// with an exactly-known prefix.
void ColumnSketch::SpillToSketch() {
  for (size_t i = 0; i < distinct.size(); ++i) {
    sketch.AddWeighted(distinct[i], count[i]);
  }
  distinct.clear();
  distinct.shrink_to_fit();
  count.clear();
  count.shrink_to_fit();
  overflow = true;
}

void ColumnSketch::AddValue(double v, int cap) {
  if (overflow) {
    sketch.Add(v);
    return;
  }
  const auto it = std::lower_bound(distinct.begin(), distinct.end(), v);
  if (it != distinct.end() && *it == v) {
    ++count[static_cast<size_t>(it - distinct.begin())];
    return;
  }
  if (static_cast<int>(distinct.size()) >= cap) {
    SpillToSketch();
    sketch.Add(v);
    return;
  }
  count.insert(count.begin() + (it - distinct.begin()), 1);
  distinct.insert(it, v);
}

void ColumnSketch::MergeFrom(const ColumnSketch& other, int cap) {
  if (!overflow && !other.overflow) {
    std::vector<double> mv;
    std::vector<int64_t> mc;
    mv.reserve(distinct.size() + other.distinct.size());
    mc.reserve(mv.capacity());
    size_t i = 0, j = 0;
    while (i < distinct.size() || j < other.distinct.size()) {
      if (j >= other.distinct.size() ||
          (i < distinct.size() && distinct[i] < other.distinct[j])) {
        mv.push_back(distinct[i]);
        mc.push_back(count[i]);
        ++i;
      } else if (i >= distinct.size() ||
                 other.distinct[j] < distinct[i]) {
        mv.push_back(other.distinct[j]);
        mc.push_back(other.count[j]);
        ++j;
      } else {
        mv.push_back(distinct[i]);
        mc.push_back(count[i] + other.count[j]);
        ++i;
        ++j;
      }
    }
    distinct = std::move(mv);
    count = std::move(mc);
    if (static_cast<int>(distinct.size()) > cap) SpillToSketch();
    return;
  }
  if (!overflow) SpillToSketch();
  if (other.overflow) {
    sketch.Merge(other.sketch);
  } else {
    for (size_t k = 0; k < other.distinct.size(); ++k) {
      sketch.AddWeighted(other.distinct[k], other.count[k]);
    }
  }
}

void ColumnSketch::SerializeTo(util::ByteWriter* out) const {
  out->U8(overflow ? 1 : 0);
  if (overflow) {
    sketch.SerializeTo(out);
    return;
  }
  out->F64(sketch.eps());
  out->U64(static_cast<uint64_t>(distinct.size()));
  for (double v : distinct) out->F64(v);
  for (int64_t c : count) out->U64(static_cast<uint64_t>(c));
}

Result<ColumnSketch> ColumnSketch::DeserializeFrom(util::ByteReader* in) {
  const uint8_t overflow = in->U8();
  if (!in->ok() || overflow > 1) {
    return Status::InvalidArgument("column summary: corrupt flag");
  }
  if (overflow) {
    Result<QuantileSketch> sketch = QuantileSketch::DeserializeFrom(in);
    if (!sketch.ok()) return sketch.status();
    ColumnSketch out(sketch->eps());
    out.sketch = *std::move(sketch);
    out.overflow = true;
    return out;
  }
  const double eps = in->F64();
  const uint64_t size = in->U64();
  if (!in->ok() || !(eps > 0.0) || eps >= 1.0 ||
      size > in->remaining() / 16) {  // 8 value + 8 count bytes per pair
    return Status::InvalidArgument("column summary: corrupt pair list");
  }
  ColumnSketch out(eps);
  out.distinct.resize(static_cast<size_t>(size));
  out.count.resize(static_cast<size_t>(size));
  for (size_t i = 0; i < out.distinct.size(); ++i) {
    out.distinct[i] = in->F64();
    if (i > 0 && !(out.distinct[i] > out.distinct[i - 1])) {
      return Status::InvalidArgument("column summary: unsorted values");
    }
  }
  for (size_t i = 0; i < out.count.size(); ++i) {
    out.count[i] = static_cast<int64_t>(in->U64());
    if (out.count[i] <= 0) {
      return Status::InvalidArgument("column summary: non-positive count");
    }
  }
  if (!in->ok()) {
    return Status::InvalidArgument("column summary: truncated");
  }
  return out;
}

std::vector<double> StreamedBinUpperBounds(ColumnSketch* summary, int64_t n,
                                           int cap) {
  std::vector<double> ub;
  if (!summary->overflow) {
    ub = std::move(summary->distinct);
    return ub;
  }
  for (int b = 1; b < cap; ++b) {
    const int64_t rank = static_cast<int64_t>(b) * n / cap;
    const double v = summary->sketch.QueryRank(rank);
    if (ub.empty() || v > ub.back()) ub.push_back(v);
  }
  // Catch-all last bin; its recorded bounds come from the coding pass.
  ub.push_back(std::numeric_limits<double>::infinity());
  return ub;
}

void BinCodingStats::Reset(size_t bins) {
  count.assign(bins, 0);
  vmin.assign(bins, std::numeric_limits<double>::infinity());
  vmax.assign(bins, -std::numeric_limits<double>::infinity());
}

void BinCodingStats::MergeFrom(const BinCodingStats& other) {
  assert(count.size() == other.count.size());
  for (size_t b = 0; b < count.size(); ++b) {
    count[b] += other.count[b];
    vmin[b] = std::min(vmin[b], other.vmin[b]);
    vmax[b] = std::max(vmax[b], other.vmax[b]);
  }
}

ColumnBinLayout AssembleColumnBins(const BinCodingStats& stats, int n) {
  ColumnBinLayout out;
  out.remap.assign(stats.count.size(), 0);
  int live = 0;
  for (size_t b = 0; b < stats.count.size(); ++b) {
    out.remap[b] = static_cast<uint8_t>(live);
    if (stats.count[b] > 0) ++live;
  }
  out.live = live;
  out.first.reserve(static_cast<size_t>(live));
  out.last.reserve(static_cast<size_t>(live));
  out.begins.assign(static_cast<size_t>(live) + 1, 0);
  int rank = 0, slot = 0;
  for (size_t b = 0; b < stats.count.size(); ++b) {
    if (stats.count[b] == 0) continue;
    out.first.push_back(stats.vmin[b]);
    out.last.push_back(stats.vmax[b]);
    out.begins[static_cast<size_t>(slot)] = rank;
    rank += stats.count[b];
    ++slot;
  }
  out.begins[static_cast<size_t>(live)] = n;
  return out;
}

std::shared_ptr<const BinnedIndex> BinnedIndex::Build(const ColumnIndex& index,
                                                      int max_bins) {
  assert(max_bins >= 1 && max_bins <= kMaxBins);
  auto binned = std::shared_ptr<BinnedIndex>(new BinnedIndex());
  const int n = index.num_rows();
  const int m = index.num_cols();
  binned->num_rows_ = n;
  binned->num_cols_ = m;
  binned->max_bins_ = max_bins;
  binned->kind_ = BuildKind::kExactPack;
  binned->num_bins_.resize(static_cast<size_t>(m));
  binned->codes_.resize(static_cast<size_t>(m));
  binned->bin_first_.resize(static_cast<size_t>(m));
  binned->bin_last_.resize(static_cast<size_t>(m));
  binned->bin_begin_rank_.resize(static_cast<size_t>(m));

  std::vector<ValueRun> runs;
  for (int j = 0; j < m; ++j) {
    const std::vector<double>& col = index.column(j);
    const std::vector<int>& sorted = index.sorted_rows(j);

    runs.clear();
    int begin = 0;
    for (int r = 1; r <= n; ++r) {
      if (r == n || col[static_cast<size_t>(sorted[static_cast<size_t>(r)])] !=
                        col[static_cast<size_t>(
                            sorted[static_cast<size_t>(begin)])]) {
        runs.push_back({begin, r});
        begin = r;
      }
    }

    std::vector<int>& begins = binned->bin_begin_rank_[static_cast<size_t>(j)];
    begins = PackRuns(runs, n, max_bins);
    const int num_bins = static_cast<int>(begins.size()) - 1;
    binned->num_bins_[static_cast<size_t>(j)] = num_bins;

    std::vector<double>& first = binned->bin_first_[static_cast<size_t>(j)];
    std::vector<double>& last = binned->bin_last_[static_cast<size_t>(j)];
    std::vector<uint8_t>& codes = binned->codes_[static_cast<size_t>(j)];
    first.resize(static_cast<size_t>(num_bins));
    last.resize(static_cast<size_t>(num_bins));
    codes.resize(static_cast<size_t>(n));
    for (int b = 0; b < num_bins; ++b) {
      const int lo = begins[static_cast<size_t>(b)];
      const int hi = begins[static_cast<size_t>(b) + 1];
      first[static_cast<size_t>(b)] =
          col[static_cast<size_t>(sorted[static_cast<size_t>(lo)])];
      last[static_cast<size_t>(b)] =
          col[static_cast<size_t>(sorted[static_cast<size_t>(hi - 1)])];
      for (int r = lo; r < hi; ++r) {
        codes[static_cast<size_t>(sorted[static_cast<size_t>(r)])] =
            static_cast<uint8_t>(b);
      }
    }
  }
  binned->RefreshViews();
  return binned;
}

std::shared_ptr<const BinnedIndex> BinnedIndex::Build(const Dataset& d,
                                                      int max_bins) {
  return Build(*ColumnIndex::Build(d), max_bins);
}

Result<StreamedDataset> BinnedIndex::BuildStreamed(
    DatasetSource* source, const StreamedBuildOptions& options) {
  if (options.max_bins < 1 || options.max_bins > kMaxBins) {
    return Status::InvalidArgument("max_bins out of [1, 256]");
  }
  if (options.block_rows < 1) {
    return Status::InvalidArgument("block_rows must be >= 1");
  }
  if (!(options.sketch_eps > 0.0) || options.sketch_eps >= 0.5) {
    return Status::InvalidArgument("sketch_eps out of (0, 0.5)");
  }
  const int m = source->num_cols();
  if (m <= 0) return Status::InvalidArgument("source has no input columns");
  const int cap = options.max_bins;
  const int threads = std::max(1, options.threads);

  // --- Pass 1: sketches, distinct tracking, fingerprints, labels. --------
  util::DatasetHasher input_hasher(util::DatasetHasher::Scope::kInputs, m);
  util::DatasetHasher full_hasher(util::DatasetHasher::Scope::kFull, m);
  std::vector<double> y;
  std::vector<ColumnSketch> acc(static_cast<size_t>(m),
                                ColumnSketch(options.sketch_eps));

  Status reset = source->Reset();
  if (!reset.ok()) return reset;

  // One slot-based loop for every thread count: batches of up to `threads`
  // blocks are copied into private slots (block views die on the next
  // NextBlock call), sketched into per-block summaries -- concurrently
  // when a pool exists, inline otherwise -- and folded into the
  // accumulator in block order. Thread count therefore cannot change the
  // result; only block_rows can move sketch boundaries.
  // One worker pool shared by both passes. Spawning a second pool for the
  // coding pass cost more than its parallelism bought back at bench block
  // sizes (the parallel streamed build measured slower than serial);
  // threads are now created once per build.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  {
    obs::Span span("index.sketch_pass");
    if (pool == nullptr) {
      // Serial: sketch each block straight off the source's view (valid
      // until the next NextBlock call) -- no slot copies. The per-block
      // local sketch folded in block order is kept so the summary state
      // matches the threaded path exactly: thread count cannot change the
      // result, only block_rows can move sketch boundaries.
      std::vector<ColumnSketch> local;
      for (;;) {
        Result<RowBlock> block = source->NextBlock(options.block_rows);
        if (!block.ok()) return block.status();
        if (block->empty()) break;
        const int rows = block->num_rows();
        input_hasher.AddRows(block->x.data(), nullptr, rows);
        full_hasher.AddRows(block->x.data(), block->y, rows);
        y.insert(y.end(), block->y, block->y + rows);
        local.assign(static_cast<size_t>(m),
                     ColumnSketch(options.sketch_eps));
        SketchBlock(block->x.data(), rows, m, cap, &local);
        for (int j = 0; j < m; ++j) {
          acc[static_cast<size_t>(j)].MergeFrom(local[static_cast<size_t>(j)],
                                                cap);
        }
      }
    } else {
      struct Slot {
        std::vector<double> x, y;
        int rows = 0;
        std::vector<ColumnSketch> local;
      };
      std::vector<Slot> slots(static_cast<size_t>(threads));
      bool done = false;
      while (!done) {
        int filled = 0;
        while (filled < threads) {
          Result<RowBlock> block = source->NextBlock(options.block_rows);
          if (!block.ok()) return block.status();
          if (block->empty()) {
            done = true;
            break;
          }
          Slot& slot = slots[static_cast<size_t>(filled)];
          const int rows = block->num_rows();
          slot.rows = rows;
          slot.x.assign(block->x.data(),
                        block->x.data() + static_cast<size_t>(rows) * m);
          slot.y.assign(block->y, block->y + rows);
          input_hasher.AddRows(slot.x.data(), nullptr, rows);
          full_hasher.AddRows(slot.x.data(), slot.y.data(), rows);
          y.insert(y.end(), slot.y.begin(), slot.y.end());
          ++filled;
        }
        for (int s = 0; s < filled; ++s) {
          Slot& slot = slots[static_cast<size_t>(s)];
          slot.local.assign(static_cast<size_t>(m),
                            ColumnSketch(options.sketch_eps));
          pool->Submit([&slot, m, cap] {
            SketchBlock(slot.x.data(), slot.rows, m, cap, &slot.local);
          });
        }
        pool->Wait();
        for (int s = 0; s < filled; ++s) {
          for (int j = 0; j < m; ++j) {
            acc[static_cast<size_t>(j)].MergeFrom(
                slots[static_cast<size_t>(s)].local[static_cast<size_t>(j)],
                cap);
          }
        }
      }
    }
  }

  const int64_t n64 = input_hasher.rows();
  if (n64 == 0) return Status::InvalidArgument("dataset stream is empty");
  if (n64 > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("dataset stream exceeds 2^31 rows");
  }
  const int n = static_cast<int>(n64);

  // --- Bin boundaries: distinct values when they fit, sketch quantiles ---
  // otherwise. upper[j] holds ascending bin upper bounds; a value's code is
  // the first bin whose upper bound is >= it.
  std::vector<std::vector<double>> upper(static_cast<size_t>(m));
  bool any_sketch = false;
  for (int j = 0; j < m; ++j) {
    ColumnSketch& cs = acc[static_cast<size_t>(j)];
    any_sketch = any_sketch || cs.overflow;
    upper[static_cast<size_t>(j)] = StreamedBinUpperBounds(&cs, n, cap);
  }

  // --- Pass 2: code every row chunk by chunk, tracking per-bin counts ----
  // and exact min/max values.
  reset = source->Reset();
  if (!reset.ok()) return reset;

  auto binned = std::shared_ptr<BinnedIndex>(new BinnedIndex());
  binned->num_rows_ = n;
  binned->num_cols_ = m;
  binned->max_bins_ = cap;
  binned->kind_ = any_sketch ? BuildKind::kSketch : BuildKind::kExactPack;
  binned->codes_.resize(static_cast<size_t>(m));
  std::vector<BinCodingStats> stats(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    binned->codes_[static_cast<size_t>(j)].reserve(static_cast<size_t>(n));
    stats[static_cast<size_t>(j)].Reset(upper[static_cast<size_t>(j)].size());
  }

  auto code_span = std::make_unique<obs::Span>("index.code_pass");
  ThreadPool* code_pool = (pool != nullptr && m > 1) ? pool.get() : nullptr;
  int64_t seen = 0;
  for (;;) {
    Result<RowBlock> block = source->NextBlock(options.block_rows);
    if (!block.ok()) return block.status();
    if (block->empty()) break;
    const int rows = block->num_rows();
    seen += rows;
    if (seen > n64) {
      return Status::FailedPrecondition(
          "dataset source yielded extra rows on the second pass");
    }
    const double* x = block->x.data();
    auto code_column = [&, x, rows](int j) {
      const std::vector<double>& ub = upper[static_cast<size_t>(j)];
      std::vector<uint8_t>& codes = binned->codes_[static_cast<size_t>(j)];
      BinCodingStats& cs = stats[static_cast<size_t>(j)];
      for (int r = 0; r < rows; ++r) {
        const double v = x[static_cast<size_t>(r) * m + j];
        const uint8_t b = StreamedCodeOf(ub, v);
        codes.push_back(b);
        cs.Observe(b, v);
      }
    };
    if (code_pool != nullptr) {
      for (int j = 0; j < m; ++j) {
        code_pool->Submit([&code_column, j] { code_column(j); });
      }
      code_pool->Wait();
    } else {
      for (int j = 0; j < m; ++j) code_column(j);
    }
  }
  if (seen != n64) {
    return Status::FailedPrecondition(
        "dataset source yielded fewer rows on the second pass");
  }
  code_span.reset();  // the assemble below is not part of the coding pass

  // --- Assemble: drop empty bins, exact bounds, rank offsets, own perm. --
  binned->num_bins_.resize(static_cast<size_t>(m));
  binned->bin_first_.resize(static_cast<size_t>(m));
  binned->bin_last_.resize(static_cast<size_t>(m));
  binned->bin_begin_rank_.resize(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    ColumnBinLayout layout =
        AssembleColumnBins(stats[static_cast<size_t>(j)], n);
    binned->num_bins_[static_cast<size_t>(j)] = layout.live;
    if (layout.live != static_cast<int>(layout.remap.size())) {
      for (uint8_t& c : binned->codes_[static_cast<size_t>(j)]) {
        c = layout.remap[c];
      }
    }
    binned->bin_first_[static_cast<size_t>(j)] = std::move(layout.first);
    binned->bin_last_[static_cast<size_t>(j)] = std::move(layout.last);
    binned->bin_begin_rank_[static_cast<size_t>(j)] = std::move(layout.begins);
  }
  binned->BuildOwnPermutation();
  binned->RefreshViews();

  StreamedDataset out;
  out.index = binned;
  out.y = std::move(y);
  out.input_fingerprint = input_hasher.Finalize();
  out.fingerprint = full_hasher.Finalize();
  return out;
}

// Stable counting sort of each column's rows by bin code: rows ascending by
// (code, row id) -- exactly the ColumnIndex sort order whenever every bin
// holds a single distinct value.
void BinnedIndex::BuildOwnPermutation() {
  sorted_.assign(static_cast<size_t>(num_cols_), {});
  for (int j = 0; j < num_cols_; ++j) {
    std::vector<int>& perm = sorted_[static_cast<size_t>(j)];
    perm.resize(static_cast<size_t>(num_rows_));
    std::vector<int> offset(bin_begin_rank_[static_cast<size_t>(j)].begin(),
                            bin_begin_rank_[static_cast<size_t>(j)].end() - 1);
    const std::vector<uint8_t>& codes = codes_[static_cast<size_t>(j)];
    for (int r = 0; r < num_rows_; ++r) {
      perm[static_cast<size_t>(offset[codes[static_cast<size_t>(r)]]++)] = r;
    }
  }
}

void BinnedIndex::RefreshViews() {
  code_view_.resize(static_cast<size_t>(num_cols_));
  for (int j = 0; j < num_cols_; ++j) {
    const std::vector<uint8_t>& c = codes_[static_cast<size_t>(j)];
    code_view_[static_cast<size_t>(j)] = ColumnView<uint8_t>(c.data(), c.size());
  }
  sorted_view_.clear();
  if (!sorted_.empty()) {
    sorted_view_.resize(static_cast<size_t>(num_cols_));
    for (int j = 0; j < num_cols_; ++j) {
      const std::vector<int>& s = sorted_[static_cast<size_t>(j)];
      sorted_view_[static_cast<size_t>(j)] = ColumnView<int>(s.data(), s.size());
    }
  }
}

int BinnedIndex::BinOf(int j, double v) const {
  const std::vector<double>& last = bin_last_[static_cast<size_t>(j)];
  const auto it = std::lower_bound(last.begin(), last.end(), v);
  if (it == last.end()) return num_bins(j) - 1;
  return static_cast<int>(it - last.begin());
}

namespace {
constexpr uint32_t kBinnedIndexVersion = 1;
}  // namespace

void BinnedIndex::Serialize(util::ByteWriter* out) const {
  out->U32(kBinnedIndexVersion);
  out->U8(static_cast<uint8_t>(kind_));
  out->U8(has_sorted_rows() ? 1 : 0);
  out->I32(num_rows_);
  out->I32(num_cols_);
  out->I32(max_bins_);
  for (int j = 0; j < num_cols_; ++j) {
    // Through the view, not codes_: a mapped index serializes its mmap'd
    // columns just as an in-memory one does its vectors.
    const ColumnView<uint8_t> codes = code_view_[static_cast<size_t>(j)];
    out->U64(codes.size());
    for (uint8_t c : codes) out->U8(c);
    out->VecF64(bin_first_[static_cast<size_t>(j)]);
    out->VecF64(bin_last_[static_cast<size_t>(j)]);
    out->VecI32(bin_begin_rank_[static_cast<size_t>(j)]);
  }
}

Result<std::shared_ptr<const BinnedIndex>> BinnedIndex::Deserialize(
    util::ByteReader* in) {
  const auto corrupt = [](const char* what) {
    return Status::InvalidArgument(std::string("corrupt BinnedIndex: ") +
                                   what);
  };
  if (in->U32() != kBinnedIndexVersion) return corrupt("version");
  const uint8_t kind = in->U8();
  if (kind > static_cast<uint8_t>(BuildKind::kSketch)) return corrupt("kind");
  const uint8_t has_sorted = in->U8();
  if (has_sorted > 1) return corrupt("sorted flag");
  auto binned = std::shared_ptr<BinnedIndex>(new BinnedIndex());
  binned->kind_ = static_cast<BuildKind>(kind);
  binned->num_rows_ = in->I32();
  binned->num_cols_ = in->I32();
  binned->max_bins_ = in->I32();
  if (!in->ok() || binned->num_rows_ <= 0 || binned->num_cols_ <= 0 ||
      binned->max_bins_ < 1 || binned->max_bins_ > kMaxBins) {
    return corrupt("header");
  }
  const int n = binned->num_rows_;
  const int m = binned->num_cols_;
  binned->num_bins_.resize(static_cast<size_t>(m));
  binned->codes_.resize(static_cast<size_t>(m));
  binned->bin_first_.resize(static_cast<size_t>(m));
  binned->bin_last_.resize(static_cast<size_t>(m));
  binned->bin_begin_rank_.resize(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    std::vector<uint8_t>& codes = binned->codes_[static_cast<size_t>(j)];
    std::vector<double>& first = binned->bin_first_[static_cast<size_t>(j)];
    std::vector<double>& last = binned->bin_last_[static_cast<size_t>(j)];
    std::vector<int>& begins = binned->bin_begin_rank_[static_cast<size_t>(j)];
    codes = in->VecU8();
    first = in->VecF64();
    last = in->VecF64();
    begins = in->VecI32();
    if (!in->ok()) return corrupt("truncated column payload");
    const int bins = static_cast<int>(first.size());
    binned->num_bins_[static_cast<size_t>(j)] = bins;
    if (bins < 1 || bins > binned->max_bins_ ||
        last.size() != static_cast<size_t>(bins) ||
        codes.size() != static_cast<size_t>(n) ||
        begins.size() != static_cast<size_t>(bins) + 1) {
      return corrupt("column shape");
    }
    if (begins.front() != 0 || begins.back() != n) return corrupt("bin ranks");
    for (int b = 0; b < bins; ++b) {
      if (begins[static_cast<size_t>(b)] >= begins[static_cast<size_t>(b) + 1]) {
        return corrupt("bin ranks");
      }
      if (first[static_cast<size_t>(b)] > last[static_cast<size_t>(b)]) {
        return corrupt("bin bounds");
      }
      if (b > 0 && !(first[static_cast<size_t>(b)] >
                     last[static_cast<size_t>(b) - 1])) {
        return corrupt("bin bounds");
      }
    }
    // Codes must be in range and their per-bin totals must reproduce the
    // rank offsets -- a cheap full-consistency pass that catches payload
    // bit flips the structural checks above would miss.
    std::vector<int> count(static_cast<size_t>(bins), 0);
    for (uint8_t c : codes) {
      if (c >= bins) return corrupt("code out of range");
      ++count[c];
    }
    for (int b = 0; b < bins; ++b) {
      if (count[static_cast<size_t>(b)] != begins[static_cast<size_t>(b) + 1] -
                                               begins[static_cast<size_t>(b)]) {
        return corrupt("code counts");
      }
    }
  }
  if (has_sorted) binned->BuildOwnPermutation();
  binned->RefreshViews();
  return std::shared_ptr<const BinnedIndex>(std::move(binned));
}

namespace {

// "REDSBMAP": the write-once mapped index format. Little-endian throughout.
// Layout: header blob (ByteWriter: magic, version, key echo, dims, per-bin
// metadata), zero-padding to 8 bytes, the raw column-major uint8 codes
// (m x n bytes), padding to 8, the raw column-major int32 permutation
// (m x n x 4 bytes), and a trailing FNV-1a 64 over every preceding byte.
// The bulk regions are exactly the in-memory arrays, so readers alias the
// mapping instead of copying.
constexpr uint64_t kMappedMagic = 0x52454453424d4150ULL;  // "REDSBMAP"

size_t AlignUp8(size_t v) { return (v + 7) & ~static_cast<size_t>(7); }

}  // namespace

Status BinnedIndex::WriteMapped(const std::string& path,
                                uint64_t key_echo) const {
  assert(has_sorted_rows());
  util::ByteWriter head;
  head.U64(kMappedMagic);
  head.U32(kBinnedIndexVersion);
  head.U64(key_echo);
  head.U8(static_cast<uint8_t>(kind_));
  head.I32(num_rows_);
  head.I32(num_cols_);
  head.I32(max_bins_);
  for (int j = 0; j < num_cols_; ++j) {
    head.VecF64(bin_first_[static_cast<size_t>(j)]);
    head.VecF64(bin_last_[static_cast<size_t>(j)]);
    head.VecI32(bin_begin_rank_[static_cast<size_t>(j)]);
  }

  const size_t col_bytes = static_cast<size_t>(num_rows_);
  const size_t codes_begin = AlignUp8(head.size());
  const size_t codes_bytes = static_cast<size_t>(num_cols_) * col_bytes;
  const size_t perm_begin = AlignUp8(codes_begin + codes_bytes);
  const size_t perm_bytes = codes_bytes * sizeof(int32_t);
  const size_t checksum_begin = perm_begin + perm_bytes;

  std::string buf(checksum_begin + 8, '\0');
  std::memcpy(buf.data(), head.data().data(), head.size());
  for (int j = 0; j < num_cols_; ++j) {
    const ColumnView<uint8_t> codes = code_view_[static_cast<size_t>(j)];
    std::memcpy(buf.data() + codes_begin + static_cast<size_t>(j) * col_bytes,
                codes.data(), col_bytes);
    const ColumnView<int> sorted = sorted_view_[static_cast<size_t>(j)];
    std::memcpy(buf.data() + perm_begin +
                    static_cast<size_t>(j) * col_bytes * sizeof(int32_t),
                sorted.data(), col_bytes * sizeof(int32_t));
  }
  const uint64_t checksum = util::Fnv64(buf.data(), checksum_begin);
  util::ByteWriter trailer;
  trailer.U64(checksum);
  std::memcpy(buf.data() + checksum_begin, trailer.data().data(), 8);

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!f) {
    f.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Result<std::shared_ptr<const BinnedIndex>> BinnedIndex::OpenMapped(
    const std::string& path, uint64_t key_echo, int expect_rows,
    int expect_cols) {
  const auto corrupt = [&path](const char* what) {
    return Status::InvalidArgument(std::string("corrupt mapped index ") +
                                   path + ": " + what);
  };
  Result<util::MappedFile> mapped = util::MappedFile::OpenReadOnly(path);
  if (!mapped.ok()) return mapped.status();
  const char* base = mapped->data();
  const size_t file_size = mapped->size();
  if (file_size < 8 + 4 + 8 + 1 + 12 + 8) return corrupt("truncated header");

  // The trailing checksum covers everything before it: one sequential scan
  // at open rejects bit flips anywhere in the file, including the bulk
  // regions the structural checks below never touch.
  util::ByteReader trailer(base + file_size - 8, 8);
  if (util::Fnv64(base, file_size - 8) != trailer.U64()) {
    return corrupt("checksum");
  }

  util::ByteReader in(base, file_size - 8);
  if (in.U64() != kMappedMagic) return corrupt("magic");
  if (in.U32() != kBinnedIndexVersion) return corrupt("version");
  if (in.U64() != key_echo) return corrupt("key echo");
  const uint8_t kind = in.U8();
  if (kind > static_cast<uint8_t>(BuildKind::kSketch)) return corrupt("kind");
  auto binned = std::shared_ptr<BinnedIndex>(new BinnedIndex());
  binned->kind_ = static_cast<BuildKind>(kind);
  binned->num_rows_ = in.I32();
  binned->num_cols_ = in.I32();
  binned->max_bins_ = in.I32();
  if (!in.ok() || binned->num_rows_ != expect_rows ||
      binned->num_cols_ != expect_cols || binned->num_rows_ <= 0 ||
      binned->num_cols_ <= 0 || binned->max_bins_ < 1 ||
      binned->max_bins_ > kMaxBins) {
    return corrupt("header");
  }
  const int n = binned->num_rows_;
  const int m = binned->num_cols_;
  binned->num_bins_.resize(static_cast<size_t>(m));
  binned->bin_first_.resize(static_cast<size_t>(m));
  binned->bin_last_.resize(static_cast<size_t>(m));
  binned->bin_begin_rank_.resize(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    std::vector<double>& first = binned->bin_first_[static_cast<size_t>(j)];
    std::vector<double>& last = binned->bin_last_[static_cast<size_t>(j)];
    std::vector<int>& begins = binned->bin_begin_rank_[static_cast<size_t>(j)];
    first = in.VecF64();
    last = in.VecF64();
    begins = in.VecI32();
    if (!in.ok()) return corrupt("truncated bin metadata");
    const int bins = static_cast<int>(first.size());
    binned->num_bins_[static_cast<size_t>(j)] = bins;
    if (bins < 1 || bins > binned->max_bins_ ||
        last.size() != static_cast<size_t>(bins) ||
        begins.size() != static_cast<size_t>(bins) + 1) {
      return corrupt("column shape");
    }
    if (begins.front() != 0 || begins.back() != n) return corrupt("bin ranks");
    for (int b = 0; b < bins; ++b) {
      if (begins[static_cast<size_t>(b)] >=
          begins[static_cast<size_t>(b) + 1]) {
        return corrupt("bin ranks");
      }
      if (first[static_cast<size_t>(b)] > last[static_cast<size_t>(b)]) {
        return corrupt("bin bounds");
      }
      if (b > 0 && !(first[static_cast<size_t>(b)] >
                     last[static_cast<size_t>(b) - 1])) {
        return corrupt("bin bounds");
      }
    }
  }

  // Bulk regions: views alias the mapping; nothing is copied. Per-element
  // validation (code ranges, permutation consistency) is intentionally
  // skipped here -- it would fault in the whole payload, and the checksum
  // above already vouches for the bytes.
  const size_t head_size = file_size - 8 - in.remaining();
  const size_t col_bytes = static_cast<size_t>(n);
  const size_t codes_begin = AlignUp8(head_size);
  const size_t codes_bytes = static_cast<size_t>(m) * col_bytes;
  const size_t perm_begin = AlignUp8(codes_begin + codes_bytes);
  const size_t perm_bytes = codes_bytes * sizeof(int32_t);
  if (perm_begin + perm_bytes + 8 != file_size) return corrupt("file size");
  binned->code_view_.resize(static_cast<size_t>(m));
  binned->sorted_view_.resize(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    binned->code_view_[static_cast<size_t>(j)] = ColumnView<uint8_t>(
        reinterpret_cast<const uint8_t*>(base + codes_begin +
                                         static_cast<size_t>(j) * col_bytes),
        col_bytes);
    binned->sorted_view_[static_cast<size_t>(j)] = ColumnView<int>(
        reinterpret_cast<const int*>(base + perm_begin +
                                     static_cast<size_t>(j) * col_bytes *
                                         sizeof(int32_t)),
        col_bytes);
  }
  binned->mapped_ = std::move(mapped).value();
  return std::shared_ptr<const BinnedIndex>(std::move(binned));
}

}  // namespace reds
