#include "core/bumping.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/rng.h"

namespace reds {

void ParetoFilter(std::vector<Box>* boxes, std::vector<PrPoint>* curve) {
  assert(boxes->size() == curve->size());
  const size_t n = boxes->size();
  std::vector<bool> dominated(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n && !dominated[i]; ++j) {
      if (i == j || dominated[j]) continue;
      const bool geq = (*curve)[j].recall >= (*curve)[i].recall &&
                       (*curve)[j].precision >= (*curve)[i].precision;
      const bool strict = (*curve)[j].recall > (*curve)[i].recall ||
                          (*curve)[j].precision > (*curve)[i].precision;
      if (geq && strict) dominated[i] = true;
    }
  }
  // Also drop exact duplicates in PR space (keep the first).
  std::vector<Box> kept_boxes;
  std::vector<PrPoint> kept_curve;
  for (size_t i = 0; i < n; ++i) {
    if (dominated[i]) continue;
    bool duplicate = false;
    for (size_t j = 0; j < kept_curve.size(); ++j) {
      if (kept_curve[j].recall == (*curve)[i].recall &&
          kept_curve[j].precision == (*curve)[i].precision) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    kept_boxes.push_back((*boxes)[i]);
    kept_curve.push_back((*curve)[i]);
  }
  *boxes = std::move(kept_boxes);
  *curve = std::move(kept_curve);
}

const Box& BumpingResult::BestBox() const {
  return boxes[static_cast<size_t>(BestIndex())];
}

int BumpingResult::BestIndex() const {
  int best = 0;
  for (size_t i = 1; i < val_curve.size(); ++i) {
    if (val_curve[i].precision > val_curve[static_cast<size_t>(best)].precision) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

BumpingResult RunPrimBumping(const Dataset& train, const Dataset& val,
                             const BumpingConfig& config, uint64_t seed) {
  assert(train.num_rows() > 0);
  const int dims = train.num_cols();
  const int m = config.m > 0 ? std::min(config.m, dims) : dims;

  std::vector<Box> boxes;
  std::vector<PrPoint> curve;
  const double total_val_pos = val.TotalPositive();

  for (int rep = 0; rep < config.q; ++rep) {
    Rng rng(DeriveSeed(seed, static_cast<uint64_t>(rep)));
    const std::vector<int> rows = rng.BootstrapIndices(train.num_rows());
    std::vector<int> columns = rng.SampleWithoutReplacement(dims, m);
    std::sort(columns.begin(), columns.end());

    Dataset d_bs = train.SubsetRows(rows).SelectColumns(columns);
    if (d_bs.TotalPositive() == 0.0 ||
        d_bs.TotalPositive() == d_bs.num_rows()) {
      continue;  // degenerate bootstrap sample
    }
    const PrimResult prim = RunPrim(d_bs, d_bs, config.prim);
    for (const Box& b : prim.ReturnedBoxes()) {
      Box lifted = b.LiftToFullSpace(dims, columns);
      const BoxStats stats = ComputeBoxStats(val, lifted);
      curve.push_back({Recall(stats, total_val_pos), Precision(stats)});
      boxes.push_back(std::move(lifted));
    }
  }

  if (boxes.empty()) {
    // Every bootstrap sample was degenerate; fall back to the full box.
    Box full = Box::Unbounded(dims);
    const BoxStats stats = ComputeBoxStats(val, full);
    curve.push_back({Recall(stats, total_val_pos), Precision(stats)});
    boxes.push_back(std::move(full));
  }

  ParetoFilter(&boxes, &curve);

  // Sort by decreasing recall so the sequence reads like a peeling trajectory.
  std::vector<size_t> order(boxes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return curve[a].recall > curve[b].recall;
  });
  BumpingResult result;
  result.boxes.reserve(boxes.size());
  result.val_curve.reserve(boxes.size());
  for (size_t i : order) {
    result.boxes.push_back(std::move(boxes[i]));
    result.val_curve.push_back(curve[i]);
  }
  return result;
}

}  // namespace reds
