#include "core/pca_prim.h"

#include <cassert>

namespace reds {

std::vector<double> PcaPrimResult::Project(const double* x) const {
  const int dim = rotation.rows();
  std::vector<double> centered(static_cast<size_t>(dim));
  for (int j = 0; j < dim; ++j) {
    centered[static_cast<size_t>(j)] = x[j] - center[static_cast<size_t>(j)];
  }
  // Rotated coordinate k = column k of R dotted with the centered point.
  std::vector<double> out(static_cast<size_t>(dim), 0.0);
  for (int k = 0; k < dim; ++k) {
    double s = 0.0;
    for (int j = 0; j < dim; ++j) s += rotation(j, k) * centered[static_cast<size_t>(j)];
    out[static_cast<size_t>(k)] = s;
  }
  return out;
}

bool PcaPrimResult::Contains(const double* x) const {
  const std::vector<double> projected = Project(x);
  return prim.BestBox().Contains(projected.data());
}

Dataset ProjectDataset(const PcaPrimResult& result, const Dataset& d) {
  Dataset out(d.num_cols());
  out.Reserve(d.num_rows());
  for (int i = 0; i < d.num_rows(); ++i) {
    out.AddRow(result.Project(d.row(i)), d.y(i));
  }
  return out;
}

Result<PcaPrimResult> RunPcaPrim(const Dataset& train, const Dataset& val,
                                 const PcaPrimConfig& config) {
  assert(train.num_cols() == val.num_cols());
  const int dim = train.num_cols();

  // Collect the rows defining the rotation.
  std::vector<double> basis_rows;
  for (int i = 0; i < train.num_rows(); ++i) {
    if (!config.class_conditional || train.y(i) > 0.5) {
      basis_rows.insert(basis_rows.end(), train.row(i), train.row(i) + dim);
    }
  }
  if (basis_rows.size() < 2 * static_cast<size_t>(dim)) {
    return Status::FailedPrecondition(
        "too few examples to estimate the PCA rotation");
  }

  auto cov = la::CovarianceMatrix(basis_rows, dim);
  if (!cov.ok()) return cov.status();
  auto eigen = la::SymmetricEigendecomposition(*cov);
  if (!eigen.ok()) return eigen.status();

  PcaPrimResult result;
  result.rotation = std::move(eigen->vectors);
  result.center.assign(static_cast<size_t>(dim), 0.0);
  const int basis_n = static_cast<int>(basis_rows.size()) / dim;
  for (int i = 0; i < basis_n; ++i) {
    for (int j = 0; j < dim; ++j) {
      result.center[static_cast<size_t>(j)] +=
          basis_rows[static_cast<size_t>(i) * dim + j];
    }
  }
  for (auto& c : result.center) c /= basis_n;

  const Dataset rotated_train = ProjectDataset(result, train);
  const Dataset rotated_val = ProjectDataset(result, val);
  result.prim = RunPrim(rotated_train, rotated_val, config.prim);
  return result;
}

}  // namespace reds
