// Peeling-trajectory analytics (paper Section 5): PRIM's interactivity comes
// from inspecting the precision-recall trajectory; interesting candidate
// boxes "manifest themselves as sudden changes in the slope". This module
// finds those knee points automatically, so non-interactive pipelines can
// surface the same candidates a domain expert would pick.
#ifndef REDS_CORE_TRAJECTORY_H_
#define REDS_CORE_TRAJECTORY_H_

#include <vector>

#include "core/quality.h"

namespace reds {

/// Indices of knee points of a peeling trajectory: boxes where the slope of
/// the precision-vs-recall curve changes the most (both endpoints included
/// when `include_endpoints`). `min_separation` suppresses near-duplicate
/// knees closer than that many boxes apart; `max_knees` caps the output.
std::vector<int> FindTrajectoryKnees(const std::vector<PrPoint>& curve,
                                     int max_knees = 3,
                                     int min_separation = 2,
                                     bool include_endpoints = false);

/// The "elbow" of a curve by maximal distance to the chord between its
/// endpoints (a classic knee definition); -1 for fewer than 3 points.
int MaxChordDistanceKnee(const std::vector<PrPoint>& curve);

}  // namespace reds

#endif  // REDS_CORE_TRAJECTORY_H_
