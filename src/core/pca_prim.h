// PCA-PRIM (Dalal et al. 2013): rotate the input space along the principal
// components of the interesting examples, run PRIM there, and report the
// box together with the rotation. The paper (Section 2.1) lists PCA-PRIM as
// compatible with REDS and orthogonal to its study; this module provides it
// as an extension, including the REDS composition.
#ifndef REDS_CORE_PCA_PRIM_H_
#define REDS_CORE_PCA_PRIM_H_

#include "core/dataset.h"
#include "core/prim.h"
#include "la/symmetric.h"

namespace reds {

struct PcaPrimConfig {
  PrimConfig prim;
  /// Rotate along the principal components of the positive examples only
  /// (Dalal et al.'s choice); false: use all examples.
  bool class_conditional = true;
};

/// A scenario in rotated coordinates: x is interesting iff
/// box.Contains(R^T (x - center)), i.e. the box constrains linear
/// combinations of the original inputs.
struct PcaPrimResult {
  la::Matrix rotation;          // columns = principal directions
  std::vector<double> center;   // mean subtracted before rotating
  PrimResult prim;              // trajectory in rotated coordinates

  /// Projects a raw point into the rotated coordinates.
  std::vector<double> Project(const double* x) const;
  /// Membership of a raw point in the selected (best validation) box.
  bool Contains(const double* x) const;
};

/// Runs PCA-PRIM; fails when the covariance is degenerate (fewer than two
/// positive examples in class-conditional mode).
Result<PcaPrimResult> RunPcaPrim(const Dataset& train, const Dataset& val,
                                 const PcaPrimConfig& config);

/// Rotates a dataset into the PCA coordinates of `result`.
Dataset ProjectDataset(const PcaPrimResult& result, const Dataset& d);

}  // namespace reds

#endif  // REDS_CORE_PCA_PRIM_H_
