#include "core/best_interval.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <utility>

#include "core/quality.h"

namespace reds {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Canonical key for box dedup in the beam.
std::vector<double> BoxKey(const Box& b) {
  std::vector<double> key;
  key.reserve(static_cast<size_t>(2 * b.dim()));
  for (int j = 0; j < b.dim(); ++j) {
    key.push_back(b.lo(j));
    key.push_back(b.hi(j));
  }
  return key;
}

// Shared tail of the per-dimension refinement: ties grouped, Kadane over the
// groups, widening over zero-weight neighbors, bounds at data values. `pts`
// is the (x_dim, y - p0) list of points inside the box when `dim` is
// ignored; it is sorted here so both gather strategies feed identical
// sequences into the group sums.
Box BestIntervalFromPoints(std::vector<std::pair<double, double>>* pts,
                           const Box& box, int dim) {
  Box out = box;
  out.set_lo(dim, -kInf);
  out.set_hi(dim, kInf);
  if (pts->empty()) return out;

  std::sort(pts->begin(), pts->end());

  // Group ties: interval bounds must separate distinct values.
  std::vector<double> value;
  std::vector<double> weight;
  for (size_t i = 0; i < pts->size();) {
    size_t j = i;
    double w = 0.0;
    while (j < pts->size() && (*pts)[j].first == (*pts)[i].first) {
      w += (*pts)[j].second;
      ++j;
    }
    value.push_back((*pts)[i].first);
    weight.push_back(w);
    i = j;
  }

  // Kadane over groups; the best (possibly single-group) run wins.
  const size_t g = value.size();
  double best_sum = -kInf;
  size_t best_begin = 0, best_end = 0;  // inclusive group range
  double run_sum = 0.0;
  size_t run_begin = 0;
  for (size_t i = 0; i < g; ++i) {
    if (run_sum <= 0.0) {
      run_sum = weight[i];
      run_begin = i;
    } else {
      run_sum += weight[i];
    }
    if (run_sum > best_sum) {
      best_sum = run_sum;
      best_begin = run_begin;
      best_end = i;
    }
  }

  // Widen over zero-weight neighbors: they do not change WRAcc, and wider
  // intervals restrict fewer sides (all-positive data must stay unbounded).
  while (best_begin > 0 && weight[best_begin - 1] == 0.0) --best_begin;
  while (best_end + 1 < g && weight[best_end + 1] == 0.0) ++best_end;

  // Bounds at data values; runs touching the extremes leave the side open,
  // so a full-range optimum keeps the dimension unrestricted.
  if (best_begin > 0) out.set_lo(dim, value[best_begin]);
  if (best_end + 1 < g) out.set_hi(dim, value[best_end]);
  return out;
}

// Beam search shared by the indexed and reference entry points; when
// `index` is null every refinement falls back to the scalar per-dimension
// rescan.
BiResult RunBiImpl(const Dataset& d, const BiConfig& config,
                   const ColumnIndex* index) {
  assert(d.num_rows() > 0);
  const int dims = d.num_cols();
  const int max_restricted =
      config.max_restricted > 0 ? std::min(config.max_restricted, dims) : dims;

  struct Scored {
    Box box;
    double wracc;
  };
  auto top = [&](std::vector<Scored>* set, int keep) {
    std::stable_sort(set->begin(), set->end(), [](const Scored& a, const Scored& b) {
      return a.wracc > b.wracc;
    });
    if (static_cast<int>(set->size()) > keep) {
      set->resize(static_cast<size_t>(keep));
    }
  };

  std::vector<Scored> beam;
  beam.push_back({Box::Unbounded(dims), BoxWRAcc(d, Box::Unbounded(dims))});

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    std::vector<Scored> candidates = beam;
    std::vector<std::vector<double>> keys;
    keys.reserve(candidates.size());
    for (const auto& s : candidates) keys.push_back(BoxKey(s.box));

    for (const auto& s : beam) {
      // One violation-count pass serves all of this box's refinements.
      std::vector<int> viol;
      if (index != nullptr) viol = CountBoundViolations(*index, s.box);
      for (int j = 0; j < dims; ++j) {
        Box refined =
            index != nullptr
                ? BestIntervalForDimensionIndexed(d, *index, s.box, j, viol)
                : BestIntervalForDimension(d, s.box, j);
        if (refined.NumRestricted() > max_restricted) continue;
        auto key = BoxKey(refined);
        if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
        keys.push_back(std::move(key));
        const double w = BoxWRAcc(d, refined);
        candidates.push_back({std::move(refined), w});
      }
    }
    top(&candidates, config.beam_size);
    // Fixed point: candidate set equals the current beam.
    bool same = candidates.size() == beam.size();
    for (size_t i = 0; same && i < beam.size(); ++i) {
      same = BoxKey(candidates[i].box) == BoxKey(beam[i].box);
    }
    beam = std::move(candidates);
    if (same) break;
  }

  BiResult result;
  result.box = beam.front().box;
  result.wracc = beam.front().wracc;
  return result;
}

}  // namespace

double BoxWRAcc(const Dataset& d, const Box& box) {
  const BoxStats stats = ComputeBoxStats(d, box);
  return WRAcc(stats, d.num_rows(), d.TotalPositive());
}

Box BestIntervalForDimension(const Dataset& d, const Box& box, int dim) {
  assert(dim >= 0 && dim < d.num_cols());
  const double p0 = d.PositiveShare();

  // Points inside the box when dimension `dim` is ignored.
  std::vector<std::pair<double, double>> pts;  // (x_dim, weight)
  for (int r = 0; r < d.num_rows(); ++r) {
    const double* x = d.row(r);
    bool inside = true;
    for (int j = 0; j < d.num_cols() && inside; ++j) {
      if (j == dim) continue;
      inside = x[j] >= box.lo(j) && x[j] <= box.hi(j);
    }
    if (inside) pts.emplace_back(x[dim], d.y(r) - p0);
  }
  return BestIntervalFromPoints(&pts, box, dim);
}

Box BestIntervalForDimensionIndexed(const Dataset& d, const ColumnIndex& index,
                                    const Box& box, int dim,
                                    const std::vector<int>& viol) {
  assert(dim >= 0 && dim < d.num_cols());
  assert(static_cast<int>(viol.size()) == d.num_rows());
  const double p0 = d.PositiveShare();

  // Walking dimension `dim`'s permutation splits the rows into three rank
  // ranges: below lo (the row violates dim's low bound), within [lo, hi]
  // (no dim violation), above hi (high-bound violation). "Inside the box
  // ignoring dim" is then a violation-count test per range.
  const std::vector<int>& s = index.sorted_rows(dim);
  const int n = index.num_rows();
  const int lo_rank = index.LowerBoundRank(dim, box.lo(dim));
  const int hi_rank = index.UpperBoundRank(dim, box.hi(dim));

  std::vector<std::pair<double, double>> pts;  // (x_dim, weight)
  for (int i = 0; i < n; ++i) {
    const int r = s[static_cast<size_t>(i)];
    const int required = (i < lo_rank || i >= hi_rank) ? 1 : 0;
    if (viol[static_cast<size_t>(r)] != required) continue;
    pts.emplace_back(d.x(r, dim), d.y(r) - p0);
  }
  return BestIntervalFromPoints(&pts, box, dim);
}

BiResult RunBi(const Dataset& d, const BiConfig& config,
               const ColumnIndex* index) {
  std::shared_ptr<const ColumnIndex> owned;
  if (index == nullptr) {
    owned = ColumnIndex::Build(d);
    index = owned.get();
  }
  assert(index->num_rows() == d.num_rows());
  assert(index->num_cols() == d.num_cols());
  return RunBiImpl(d, config, index);
}

BiResult RunBiReference(const Dataset& d, const BiConfig& config) {
  return RunBiImpl(d, config, nullptr);
}

}  // namespace reds
