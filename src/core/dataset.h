// Dataset: the N x M input matrix plus a real-valued target column.
// Targets are in [0, 1]; plain scenario data uses {0, 1}, while REDS's
// probability-label variants ("RPxp", ...) store fractional labels, which
// every downstream algorithm supports (n+ = sum of y generalizes counts).
#ifndef REDS_CORE_DATASET_H_
#define REDS_CORE_DATASET_H_

#include <cassert>
#include <string>
#include <vector>

namespace reds {

/// Row-major table of M input columns and one target column.
class Dataset {
 public:
  Dataset() : num_cols_(0) {}

  /// Creates an empty dataset with `num_cols` input columns.
  explicit Dataset(int num_cols) : num_cols_(num_cols) {
    assert(num_cols >= 0);
  }

  /// Creates a dataset from a flat row-major input matrix and targets.
  Dataset(int num_cols, std::vector<double> x, std::vector<double> y);

  int num_rows() const {
    return num_cols_ == 0 ? 0 : static_cast<int>(x_.size()) / num_cols_;
  }
  int num_cols() const { return num_cols_; }

  double x(int row, int col) const {
    assert(row >= 0 && row < num_rows() && col >= 0 && col < num_cols_);
    return x_[static_cast<size_t>(row) * static_cast<size_t>(num_cols_) +
              static_cast<size_t>(col)];
  }
  double y(int row) const {
    assert(row >= 0 && row < num_rows());
    return y_[static_cast<size_t>(row)];
  }
  void set_y(int row, double value) {
    assert(row >= 0 && row < num_rows());
    y_[static_cast<size_t>(row)] = value;
  }

  /// Pointer to the start of a row's inputs (contiguous, num_cols doubles).
  const double* row(int r) const {
    assert(r >= 0 && r < num_rows());
    return x_.data() + static_cast<size_t>(r) * static_cast<size_t>(num_cols_);
  }

  /// The contiguous target column (num_rows doubles). Streaming sources
  /// slice blocks out of it without copying.
  const double* y_data() const { return y_.data(); }

  /// Appends one example. `inputs` must hold num_cols() values.
  void AddRow(const double* inputs, double target);
  void AddRow(const std::vector<double>& inputs, double target) {
    assert(static_cast<int>(inputs.size()) == num_cols_);
    AddRow(inputs.data(), target);
  }

  /// Sum of targets ("number of interesting examples", N+ in the paper).
  double TotalPositive() const;

  /// Share of positive examples, N+/N; 0 when empty.
  double PositiveShare() const;

  /// New dataset containing the given rows (duplicates allowed, e.g. for
  /// bootstrap samples).
  Dataset SubsetRows(const std::vector<int>& rows) const;

  /// New dataset containing only the given input columns (targets kept).
  Dataset SelectColumns(const std::vector<int>& cols) const;

  /// Per-column minimum/maximum of the inputs; both empty when no rows.
  void ColumnRange(std::vector<double>* lo, std::vector<double>* hi) const;

  void Reserve(int rows);

 private:
  int num_cols_;
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace reds

#endif  // REDS_CORE_DATASET_H_
