#include "core/box.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace reds {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Box Box::Unbounded(int dim) {
  Box b;
  b.lo_.assign(static_cast<size_t>(dim), -kInf);
  b.hi_.assign(static_cast<size_t>(dim), kInf);
  return b;
}

bool Box::IsRestricted(int j) const {
  return lo_[static_cast<size_t>(j)] != -kInf ||
         hi_[static_cast<size_t>(j)] != kInf;
}

int Box::NumRestricted() const {
  int count = 0;
  for (int j = 0; j < dim(); ++j) count += IsRestricted(j) ? 1 : 0;
  return count;
}

bool Box::Contains(const double* x) const {
  for (int j = 0; j < dim(); ++j) {
    if (x[j] < lo_[static_cast<size_t>(j)] || x[j] > hi_[static_cast<size_t>(j)]) {
      return false;
    }
  }
  return true;
}

double Box::ClampedVolume(const std::vector<double>& domain_lo,
                          const std::vector<double>& domain_hi) const {
  assert(static_cast<int>(domain_lo.size()) == dim());
  assert(static_cast<int>(domain_hi.size()) == dim());
  double vol = 1.0;
  for (int j = 0; j < dim(); ++j) {
    const double lo = std::max(lo_[static_cast<size_t>(j)], domain_lo[static_cast<size_t>(j)]);
    const double hi = std::min(hi_[static_cast<size_t>(j)], domain_hi[static_cast<size_t>(j)]);
    if (hi <= lo) return 0.0;
    vol *= hi - lo;
  }
  return vol;
}

Box Box::Intersect(const Box& other) const {
  assert(dim() == other.dim());
  Box out = *this;
  for (int j = 0; j < dim(); ++j) {
    out.set_lo(j, std::max(lo(j), other.lo(j)));
    out.set_hi(j, std::min(hi(j), other.hi(j)));
  }
  return out;
}

Box Box::LiftToFullSpace(int full_dim, const std::vector<int>& columns) const {
  assert(static_cast<int>(columns.size()) == dim());
  Box out = Unbounded(full_dim);
  for (int j = 0; j < dim(); ++j) {
    out.set_lo(columns[static_cast<size_t>(j)], lo(j));
    out.set_hi(columns[static_cast<size_t>(j)], hi(j));
  }
  return out;
}

std::string Box::ToString(const std::vector<std::string>& names) const {
  std::ostringstream out;
  bool first = true;
  for (int j = 0; j < dim(); ++j) {
    if (!IsRestricted(j)) continue;
    if (!first) out << " AND ";
    first = false;
    const std::string name = static_cast<size_t>(j) < names.size()
                                 ? names[static_cast<size_t>(j)]
                                 : "a" + std::to_string(j + 1);
    const double l = lo(j);
    const double h = hi(j);
    if (l != -kInf && h != kInf) {
      out << l << " <= " << name << " <= " << h;
    } else if (l != -kInf) {
      out << name << " >= " << l;
    } else {
      out << name << " <= " << h;
    }
  }
  if (first) return "(any)";
  return out.str();
}

BoxStats ComputeBoxStats(const Dataset& d, const Box& box) {
  assert(box.dim() == d.num_cols());
  BoxStats stats;
  for (int r = 0; r < d.num_rows(); ++r) {
    if (box.Contains(d.row(r))) {
      stats.n += 1.0;
      stats.n_pos += d.y(r);
    }
  }
  return stats;
}

}  // namespace reds
