// Streaming quantile summary (Greenwald & Khanna 2001) for the sketch-based
// binning of the streaming data plane. The sketch keeps a small set of
// tuples (value, g, delta) such that any rank query is answered within
// eps * n of the true rank, in O((1/eps) * log(eps * n)) space, over one
// pass of the data. Sketches are mergeable: Merge() combines two summaries
// built over disjoint streams into a summary of the concatenation that
// still satisfies the eps bound relative to the combined count -- the gap
// invariant max(g_i + delta_i) <= floor(2 * eps * n) is preserved because a
// merged tuple's uncertainty grows by at most the other summary's largest
// gap, and the two gap budgets 2*eps*n_a + 2*eps*n_b sum to the combined
// budget 2*eps*n. The ThreadPool therefore sketches row blocks in parallel
// and folds the per-block sketches in deterministic block order.
//
// Everything is deterministic: same input sequence (and merge order), same
// summary -- a requirement for reproducible bin boundaries and cache keys.
#ifndef REDS_CORE_QUANTILE_SKETCH_H_
#define REDS_CORE_QUANTILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace reds {

class QuantileSketch {
 public:
  /// `eps` is the guaranteed rank-error bound as a fraction of the stream
  /// length: QueryRank(r) returns a value whose true rank interval lies
  /// within eps * count() of r.
  explicit QuantileSketch(double eps = 1.0 / 2048.0);

  void Add(double v);

  /// Adds `w` copies of `v` in O(summary) instead of O(w): the copies land
  /// as one exact tuple (g = w, delta = 0), the summary state an
  /// uncompressed sketch reaches after w consecutive equal inserts. Lets a
  /// caller that tracked exact (value, count) pairs spill them into the
  /// sketch only when its distinct budget overflows, skipping per-value
  /// sketch work on low-cardinality streams entirely.
  void AddWeighted(double v, int64_t w);

  /// Folds `other` (a summary of a disjoint stream) into this sketch.
  /// Both must share the same eps.
  void Merge(const QuantileSketch& other);

  /// Observations summarized so far.
  int64_t count() const { return n_ + static_cast<int64_t>(buffer_.size()); }

  /// A value whose rank is within eps * count() of `rank` (0-based,
  /// clamped to [0, count()-1]). The stream minimum and maximum are exact.
  double QueryRank(int64_t rank) const;

  /// QueryRank at q * (count() - 1), q in [0, 1].
  double QueryQuantile(double q) const;

  double eps() const { return eps_; }

  /// Tuples currently retained (after flushing the insert buffer);
  /// sub-linear in count() -- the whole point.
  size_t SummarySize() const;

  /// Wire form for the shard transport: eps, n and the flushed tuple list.
  /// Deserialize(Serialize(s)) reproduces the summary state exactly, so a
  /// coordinator merging shipped worker sketches gets the same result as
  /// merging the in-process originals in the same order.
  void SerializeTo(util::ByteWriter* out) const;
  static Result<QuantileSketch> DeserializeFrom(util::ByteReader* in);

 private:
  struct Tuple {
    double v = 0.0;
    int64_t g = 0;      // rmin(i) = sum of g_j for j <= i
    int64_t delta = 0;  // rmax(i) = rmin(i) + delta
    // True while every observation counted in g is a copy of v itself --
    // holds for fresh inserts (g = 1) and weighted inserts, and survives
    // Merge (g keeps counting the same observations). Compress clears it
    // when it folds a differently-valued neighbor's mass into g. Pure
    // tuples let QueryRank answer ranks inside the mass exactly, which is
    // what keeps heavy weighted tuples (g beyond the gap budget) within
    // the eps bound.
    bool pure = true;
  };

  int64_t GapBudget(int64_t n) const;
  void Flush() const;    // sort + fold the insert buffer into tuples_
  void Compress() const; // merge adjacent tuples within the gap budget

  double eps_;
  mutable int64_t n_ = 0;               // observations inside tuples_
  mutable std::vector<Tuple> tuples_;   // sorted by v
  mutable std::vector<double> buffer_;  // unsorted recent inserts
  size_t buffer_cap_;
};

}  // namespace reds

#endif  // REDS_CORE_QUANTILE_SKETCH_H_
