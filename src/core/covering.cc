#include "core/covering.h"

#include "core/quality.h"

namespace reds {

CoveringResult RunCovering(const Dataset& d, const SingleBoxDiscoverer& discover,
                           int max_subgroups, int min_points) {
  CoveringResult result;
  const double total_pos = d.TotalPositive();
  std::vector<int> remaining;
  remaining.reserve(static_cast<size_t>(d.num_rows()));
  for (int r = 0; r < d.num_rows(); ++r) remaining.push_back(r);

  for (int round = 0; round < max_subgroups; ++round) {
    if (static_cast<int>(remaining.size()) < min_points) break;
    Dataset current = d.SubsetRows(remaining);
    if (current.TotalPositive() <= 0.0) break;

    Box box = discover(current);
    const BoxStats stats = ComputeBoxStats(current, box);
    if (stats.n <= 0.0) break;  // nothing new covered

    result.boxes.push_back(box);
    result.precision.push_back(Precision(stats));
    result.coverage_share.push_back(total_pos > 0.0 ? stats.n_pos / total_pos
                                                    : 0.0);

    std::vector<int> next;
    next.reserve(remaining.size());
    for (int r : remaining) {
      if (!box.Contains(d.row(r))) next.push_back(r);
    }
    if (next.size() == remaining.size()) break;  // empty cover, no progress
    remaining = std::move(next);
  }
  return result;
}

}  // namespace reds
