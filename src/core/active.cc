#include "core/active.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/rng.h"

namespace reds {

Dataset RunActiveSampling(int dim, const LabelOracle& oracle,
                          const ActiveSamplingConfig& config, uint64_t seed) {
  assert(dim > 0 && config.initial_points > 1);
  Rng rng(DeriveSeed(seed, 0xac7e));
  sampling::PointSampler sampler =
      config.sampler ? config.sampler : sampling::MakeUniformSampler();

  // Seed design: LHS for space-filling coverage.
  Dataset labeled(dim);
  {
    const std::vector<double> design =
        sampling::LatinHypercube(config.initial_points, dim, &rng);
    labeled.Reserve(config.initial_points);
    for (int i = 0; i < config.initial_points; ++i) {
      const double* x = design.data() + static_cast<size_t>(i) * dim;
      labeled.AddRow(x, oracle(x));
    }
  }

  std::vector<double> point(static_cast<size_t>(dim));
  for (int round = 0; round < config.rounds; ++round) {
    // A fresh metamodel on everything labeled so far.
    const auto model =
        ml::FitDefault(config.metamodel, labeled,
                       DeriveSeed(seed, 100 + static_cast<uint64_t>(round)));

    // Score a candidate pool by predictive uncertainty p(1-p).
    struct Candidate {
      std::vector<double> x;
      double uncertainty;
    };
    std::vector<Candidate> pool;
    pool.reserve(static_cast<size_t>(config.pool_size));
    for (int i = 0; i < config.pool_size; ++i) {
      sampler(&rng, dim, point.data());
      const double p = model->PredictProb(point.data());
      pool.push_back({point, p * (1.0 - p)});
    }
    const int take = std::min(config.batch_size, config.pool_size);
    std::partial_sort(pool.begin(), pool.begin() + take, pool.end(),
                      [](const Candidate& a, const Candidate& b) {
                        return a.uncertainty > b.uncertainty;
                      });
    for (int i = 0; i < take; ++i) {
      labeled.AddRow(pool[static_cast<size_t>(i)].x, oracle(pool[static_cast<size_t>(i)].x.data()));
    }
  }
  return labeled;
}

}  // namespace reds
