#include "core/dataset.h"

#include <algorithm>
#include <limits>

namespace reds {

Dataset::Dataset(int num_cols, std::vector<double> x, std::vector<double> y)
    : num_cols_(num_cols), x_(std::move(x)), y_(std::move(y)) {
  assert(num_cols_ > 0);
  assert(x_.size() == y_.size() * static_cast<size_t>(num_cols_));
}

void Dataset::AddRow(const double* inputs, double target) {
  x_.insert(x_.end(), inputs, inputs + num_cols_);
  y_.push_back(target);
}

double Dataset::TotalPositive() const {
  double s = 0.0;
  for (double v : y_) s += v;
  return s;
}

double Dataset::PositiveShare() const {
  const int n = num_rows();
  return n == 0 ? 0.0 : TotalPositive() / n;
}

Dataset Dataset::SubsetRows(const std::vector<int>& rows) const {
  Dataset out(num_cols_);
  out.Reserve(static_cast<int>(rows.size()));
  for (int r : rows) out.AddRow(row(r), y(r));
  return out;
}

Dataset Dataset::SelectColumns(const std::vector<int>& cols) const {
  Dataset out(static_cast<int>(cols.size()));
  out.Reserve(num_rows());
  std::vector<double> buf(cols.size());
  for (int r = 0; r < num_rows(); ++r) {
    for (size_t j = 0; j < cols.size(); ++j) buf[j] = x(r, cols[j]);
    out.AddRow(buf.data(), y(r));
  }
  return out;
}

void Dataset::ColumnRange(std::vector<double>* lo, std::vector<double>* hi) const {
  lo->assign(static_cast<size_t>(num_cols_), std::numeric_limits<double>::infinity());
  hi->assign(static_cast<size_t>(num_cols_), -std::numeric_limits<double>::infinity());
  for (int r = 0; r < num_rows(); ++r) {
    for (int c = 0; c < num_cols_; ++c) {
      (*lo)[static_cast<size_t>(c)] = std::min((*lo)[static_cast<size_t>(c)], x(r, c));
      (*hi)[static_cast<size_t>(c)] = std::max((*hi)[static_cast<size_t>(c)], x(r, c));
    }
  }
  if (num_rows() == 0) {
    lo->clear();
    hi->clear();
  }
}

void Dataset::Reserve(int rows) {
  x_.reserve(static_cast<size_t>(rows) * static_cast<size_t>(num_cols_));
  y_.reserve(static_cast<size_t>(rows));
}

}  // namespace reds
