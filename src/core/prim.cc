// Sorted-index PRIM. Peel candidates are rank selections on per-column
// sorted permutations of the in-box points, maintained incrementally across
// peels (apply = drop a prefix/suffix of the peeled column, compact the
// others through a bitmask); the pasting phase enumerates "outside through
// one bound" points from the full-data permutations guarded by a
// per-dimension violation-count array. Produces the same box sequences as
// the original full-rescan implementation, preserved in prim_reference.cc
// and asserted equivalent in tests/prim_equivalence_test.cc.
#include "core/prim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/prim_loop.h"
#include "obs/trace.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace reds {

namespace {

// Per-dimension sorted views of the in-box training points. sorted_[j]
// holds exactly the rows currently inside the box, ascending by column j
// (ties by row id, inherited from the ColumnIndex permutation).
class PeelState {
 public:
  PeelState(const Dataset& train, const ColumnIndex& index)
      : train_(train),
        index_(index),
        in_box_(static_cast<size_t>(train.num_rows()), 1) {
    sorted_.reserve(static_cast<size_t>(train.num_cols()));
    for (int j = 0; j < train.num_cols(); ++j) {
      sorted_.push_back(index.sorted_rows(j));
    }
  }

  // Builds the low- or high-side candidate peel for one dimension, cutting
  // off roughly an alpha share of the in-box train points. Returns dim = -1
  // when no valid cut exists (e.g. all values equal). Semantics match the
  // reference MakeCandidate: the bound is the (k+1)-th order statistic,
  // points equal to the bound stay inside, and a cut swallowed by ties moves
  // past the tied block.
  Peel MakeCandidate(int dim, bool low_side, double alpha,
                     const BoxStats& in_stats) const {
    Peel peel;
    const std::vector<int>& s = sorted_[static_cast<size_t>(dim)];
    const std::vector<double>& col = index_.column(dim);
    const int n = static_cast<int>(s.size());
    const int k = std::max(1, static_cast<int>(std::floor(alpha * n)));
    if (k >= n) return peel;  // would empty the box

    double bound;
    double removed_n = 0.0;
    double removed_pos = 0.0;
    if (low_side) {
      bound = col[static_cast<size_t>(s[static_cast<size_t>(k)])];
      // Points removed: the prefix with value < bound.
      int p = LowerBoundRank(s, col, bound);
      if (p == 0) {
        // Ties swallowed the whole cut: move past the tied block.
        const int q = UpperBoundRank(s, col, bound);
        if (q >= n) return peel;  // dimension is constant in box
        bound = col[static_cast<size_t>(s[static_cast<size_t>(q)])];
        p = q;  // no values lie strictly between the old and new bound
      }
      removed_n = p;
      for (int i = 0; i < p; ++i) {
        removed_pos += train_.y(s[static_cast<size_t>(i)]);
      }
    } else {
      bound = col[static_cast<size_t>(s[static_cast<size_t>(n - 1 - k)])];
      // Points removed: the suffix with value > bound.
      int q = UpperBoundRank(s, col, bound);
      if (q >= n) {
        const int p = LowerBoundRank(s, col, bound);
        if (p == 0) return peel;  // dimension is constant in box
        bound = col[static_cast<size_t>(s[static_cast<size_t>(p - 1)])];
        q = p;  // suffix > new bound starts where values >= old bound began
      }
      removed_n = n - q;
      for (int i = q; i < n; ++i) {
        removed_pos += train_.y(s[static_cast<size_t>(i)]);
      }
    }
    if (removed_n >= n) return peel;  // would empty the box

    peel.dim = dim;
    peel.low_side = low_side;
    peel.bound = bound;
    peel.removed_n = removed_n;
    peel.removed_pos = removed_pos;
    peel.precision_after =
        (in_stats.n_pos - removed_pos) / (in_stats.n - removed_n);
    return peel;
  }

  // Drops the rows violating the peel, updating `stats`. The peeled
  // dimension loses a prefix/suffix; every other dimension is compacted
  // through the bitmask, so all views stay exact in-box row sets.
  void Apply(const Peel& peel, BoxStats* stats) {
    std::vector<int>& s = sorted_[static_cast<size_t>(peel.dim)];
    const std::vector<double>& col = index_.column(peel.dim);
    const int n = static_cast<int>(s.size());
    if (peel.low_side) {
      const int p = LowerBoundRank(s, col, peel.bound);
      for (int i = 0; i < p; ++i) {
        in_box_[static_cast<size_t>(s[static_cast<size_t>(i)])] = 0;
      }
      s.erase(s.begin(), s.begin() + p);
    } else {
      const int q = UpperBoundRank(s, col, peel.bound);
      for (int i = q; i < n; ++i) {
        in_box_[static_cast<size_t>(s[static_cast<size_t>(i)])] = 0;
      }
      s.resize(static_cast<size_t>(q));
    }
    stats->n -= peel.removed_n;
    stats->n_pos -= peel.removed_pos;
    for (int j = 0; j < static_cast<int>(sorted_.size()); ++j) {
      if (j == peel.dim) continue;
      Compact(&sorted_[static_cast<size_t>(j)]);
    }
  }

 private:
  void Compact(std::vector<int>* s) const {
    size_t kept = 0;
    for (size_t i = 0; i < s->size(); ++i) {
      const int r = (*s)[i];
      if (in_box_[static_cast<size_t>(r)]) (*s)[kept++] = r;
    }
    s->resize(kept);
  }

  const Dataset& train_;
  const ColumnIndex& index_;
  std::vector<std::vector<int>> sorted_;  // [dim] -> in-box rows by value
  std::vector<uint8_t> in_box_;           // by row id
};

// Binned peel state: the quantized counterpart of PeelState. No per-dim
// sorted in-box views are maintained; instead a per-dimension histogram of
// in-box counts per BinnedIndex bin locates each peel's boundary bin in
// O(bins), and short scans of the full-data sorted permutation inside that
// bin (filtered through the in-box bitmask) refine the exact bound, counts,
// and removed-mass sums -- in the same value-then-row-id order as the
// sorted kernel, so every Peel it produces is bit-identical to PeelState's.
// Applying a peel walks only the window of newly removed rows and
// decrements M histogram counters per row: O(removed x M) against the
// sorted kernel's O(N x M) view compaction.
class BinnedPeelState {
 public:
  BinnedPeelState(const Dataset& train, const ColumnIndex& index,
                  const BinnedIndex& binned)
      : train_(train),
        index_(index),
        binned_(binned),
        // +3 padding bytes: the dispatched masked kernels gather mask bytes
        // with 32-bit loads (see util/simd.h), so the bitmask must stay
        // readable 3 bytes past the last row. Padding rows are never
        // indexed; their value is irrelevant.
        in_box_(static_cast<size_t>(train.num_rows()) + 3, 1),
        n_(train.num_rows()) {
    const int m = train.num_cols();
    const int n = train.num_rows();
    lo_rank_.assign(static_cast<size_t>(m), 0);
    hi_rank_.assign(static_cast<size_t>(m), n);
    // Hard {0,1} labels make every y sum integer-exact regardless of
    // accumulation order, so removed-mass sums may come straight from the
    // per-bin aggregates (O(bins) per candidate). Fractional labels fall
    // back to ordered scans that replicate the sorted kernel's exact
    // floating-point accumulation sequence.
    integral_labels_ = true;
    for (int r = 0; r < n && integral_labels_; ++r) {
      const double y = train.y(r);
      integral_labels_ = y == 0.0 || y == 1.0;
    }
    bin_count_.resize(static_cast<size_t>(m));
    bin_pos_.resize(static_cast<size_t>(m));
    for (int j = 0; j < m; ++j) {
      std::vector<int>& counts = bin_count_[static_cast<size_t>(j)];
      std::vector<double>& pos = bin_pos_[static_cast<size_t>(j)];
      counts.resize(static_cast<size_t>(binned.num_bins(j)));
      pos.assign(static_cast<size_t>(binned.num_bins(j)), 0.0);
      const std::vector<int>& sorted = index.sorted_rows(j);
      for (int b = 0; b < binned.num_bins(j); ++b) {
        const int begin = binned.bin_begin_rank(j, b);
        const int len = binned.bin_begin_rank(j, b + 1) - begin;
        counts[static_cast<size_t>(b)] = len;
        if (integral_labels_) {
          // Integer-valued sums are exact in any association, so the
          // dispatched gather-sum (which may reorder) is legal here.
          pos[static_cast<size_t>(b)] =
              util::GatherSum(train.y_data(), sorted.data() + begin, len);
        } else {
          for (int rank = begin; rank < begin + len; ++rank) {
            pos[static_cast<size_t>(b)] +=
                train.y(sorted[static_cast<size_t>(rank)]);
          }
        }
      }
    }
  }

  // Mirrors PeelState::MakeCandidate decision for decision: the bound is
  // the same order statistic, tie-swallowed cuts advance past tied blocks
  // the same way, and removed sums accumulate in the same order.
  Peel MakeCandidate(int dim, bool low_side, double alpha,
                     const BoxStats& in_stats) const {
    Peel peel;
    const int n = n_;
    const int k = std::max(1, static_cast<int>(std::floor(alpha * n)));
    if (k >= n) return peel;  // would empty the box

    double bound;
    double removed_n = 0.0;
    double removed_pos = 0.0;
    if (low_side) {
      bound = ValueAtInBoxRank(dim, k);
      int p = CountLess(dim, bound);
      if (p == 0) {
        // Ties swallowed the whole cut: move past the tied block.
        const int q = CountLessEq(dim, bound);
        if (q >= n) return peel;  // dimension is constant in box
        bound = ValueAtInBoxRank(dim, q);
        p = q;
      }
      removed_n = p;
      removed_pos =
          integral_labels_ ? PrefixSumFast(dim, p) : SumYFirst(dim, p);
    } else {
      bound = ValueAtInBoxRank(dim, n - 1 - k);
      int q = CountLessEq(dim, bound);
      if (q >= n) {
        const int p = CountLess(dim, bound);
        if (p == 0) return peel;  // dimension is constant in box
        bound = ValueAtInBoxRank(dim, p - 1);
        q = p;
      }
      removed_n = n - q;
      // Integral labels: the suffix sum is the exact in-box total minus the
      // exact prefix sum (both integers).
      removed_pos = integral_labels_
                        ? in_stats.n_pos - PrefixSumFast(dim, q)
                        : SumYTail(dim, q);
    }
    if (removed_n >= n) return peel;  // would empty the box

    peel.dim = dim;
    peel.low_side = low_side;
    peel.bound = bound;
    peel.removed_n = removed_n;
    peel.removed_pos = removed_pos;
    peel.precision_after =
        (in_stats.n_pos - removed_pos) / (in_stats.n - removed_n);
    return peel;
  }

  // Drops the rows the peel cuts off: only the removed window of the peeled
  // dimension's permutation is walked, and each removed row decrements one
  // histogram counter per dimension.
  void Apply(const Peel& peel, BoxStats* stats) {
    const std::vector<int>& sorted = index_.sorted_rows(peel.dim);
    const std::vector<double>& col = index_.column(peel.dim);
    if (peel.low_side) {
      const int new_lo = reds::LowerBoundRank(sorted, col, peel.bound);
      for (int pos = lo_rank_[static_cast<size_t>(peel.dim)]; pos < new_lo;
           ++pos) {
        Remove(sorted[static_cast<size_t>(pos)]);
      }
      lo_rank_[static_cast<size_t>(peel.dim)] = new_lo;
    } else {
      const int new_hi = reds::UpperBoundRank(sorted, col, peel.bound);
      for (int pos = new_hi; pos < hi_rank_[static_cast<size_t>(peel.dim)];
           ++pos) {
        Remove(sorted[static_cast<size_t>(pos)]);
      }
      hi_rank_[static_cast<size_t>(peel.dim)] = new_hi;
    }
    stats->n -= peel.removed_n;
    stats->n_pos -= peel.removed_pos;
    // Trim every dimension's window past leading/trailing holes so later
    // scans start at a live row; amortized O(N) per dimension over the run.
    for (size_t j = 0; j < bin_count_.size(); ++j) {
      const std::vector<int>& s = index_.sorted_rows(static_cast<int>(j));
      int& lo = lo_rank_[j];
      int& hi = hi_rank_[j];
      while (lo < hi && !in_box_[static_cast<size_t>(
                            s[static_cast<size_t>(lo)])]) {
        ++lo;
      }
      while (hi > lo && !in_box_[static_cast<size_t>(
                            s[static_cast<size_t>(hi - 1)])]) {
        --hi;
      }
    }
  }

 private:
  void Remove(int r) {
    if (!in_box_[static_cast<size_t>(r)]) return;
    in_box_[static_cast<size_t>(r)] = 0;
    --n_;
    const double y = train_.y(r);
    for (size_t j = 0; j < bin_count_.size(); ++j) {
      const int b = binned_.code(static_cast<int>(j), r);
      --bin_count_[j][static_cast<size_t>(b)];
      bin_pos_[j][static_cast<size_t>(b)] -= y;
    }
  }

  // Sum of y over the first `count` in-box rows of `dim` in value order,
  // assembled from whole-bin aggregates plus an exact scan of the boundary
  // bin. Only valid for integral labels, where the result equals the
  // sequential prefix sum bit-for-bit.
  double PrefixSumFast(int dim, int count) const {
    const std::vector<int>& counts = bin_count_[static_cast<size_t>(dim)];
    const std::vector<double>& pos_sums = bin_pos_[static_cast<size_t>(dim)];
    const std::vector<int>& sorted = index_.sorted_rows(dim);
    int cum = 0;
    double sum = 0.0;
    for (size_t b = 0; b < counts.size(); ++b) {
      if (cum + counts[b] <= count) {
        cum += counts[b];
        sum += pos_sums[b];
        if (cum == count) return sum;
        continue;
      }
      const int need = count - cum;
      const int begin =
          std::max(binned_.bin_begin_rank(dim, static_cast<int>(b)),
                   lo_rank_[static_cast<size_t>(dim)]);
      const int end =
          std::min(binned_.bin_begin_rank(dim, static_cast<int>(b) + 1),
                   hi_rank_[static_cast<size_t>(dim)]);
      // need < counts[b], so the boundary bin's segment holds every row the
      // masked prefix walk takes; integral labels make the dispatched sum
      // exact (util/simd.h).
      sum += util::MaskedPrefixSum(train_.y_data(), in_box_.data(),
                                   sorted.data() + begin, end - begin, need);
      return sum;
    }
    return sum;
  }

  // Value of the rank-th in-box row of `dim` (ascending by value, ties by
  // row id): prefix counts over the bin histogram pick the bin, then a scan
  // of its permutation segment finds the row.
  double ValueAtInBoxRank(int dim, int rank) const {
    const std::vector<int>& counts = bin_count_[static_cast<size_t>(dim)];
    const std::vector<int>& sorted = index_.sorted_rows(dim);
    const std::vector<double>& col = index_.column(dim);
    int cum = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      const int c = counts[b];
      if (cum + c <= rank) {
        cum += c;
        continue;
      }
      int need = rank - cum;
      const int begin =
          std::max(binned_.bin_begin_rank(dim, static_cast<int>(b)),
                   lo_rank_[static_cast<size_t>(dim)]);
      const int end =
          std::min(binned_.bin_begin_rank(dim, static_cast<int>(b) + 1),
                   hi_rank_[static_cast<size_t>(dim)]);
      for (int pos = begin; pos < end; ++pos) {
        const int r = sorted[static_cast<size_t>(pos)];
        if (!in_box_[static_cast<size_t>(r)]) continue;
        if (need == 0) return col[static_cast<size_t>(r)];
        --need;
      }
      break;
    }
    assert(false && "in-box rank out of range");
    return 0.0;
  }

  // Number of in-box rows of `dim` with value < v (v is a data value):
  // whole bins below v come from the histogram, the boundary bin from an
  // exact scan.
  int CountLess(int dim, double v) const {
    const std::vector<int>& counts = bin_count_[static_cast<size_t>(dim)];
    const std::vector<int>& sorted = index_.sorted_rows(dim);
    const std::vector<double>& col = index_.column(dim);
    int cum = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      if (binned_.bin_last(dim, static_cast<int>(b)) >= v) {
        if (binned_.bin_first(dim, static_cast<int>(b)) >= v) return cum;
        const int begin =
            std::max(binned_.bin_begin_rank(dim, static_cast<int>(b)),
                     lo_rank_[static_cast<size_t>(dim)]);
        const int end =
            std::min(binned_.bin_begin_rank(dim, static_cast<int>(b) + 1),
                     hi_rank_[static_cast<size_t>(dim)]);
        // The segment is value-sorted, so a full-segment masked count
        // equals the early-break walk; dispatched (util/simd.h).
        cum += util::MaskedCountBelow(col.data(), in_box_.data(),
                                      sorted.data() + begin, end - begin, v,
                                      /*strict=*/true);
        return cum;
      }
      cum += counts[b];
    }
    return cum;
  }

  // Number of in-box rows of `dim` with value <= v.
  int CountLessEq(int dim, double v) const {
    const std::vector<int>& counts = bin_count_[static_cast<size_t>(dim)];
    const std::vector<int>& sorted = index_.sorted_rows(dim);
    const std::vector<double>& col = index_.column(dim);
    int cum = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      if (binned_.bin_last(dim, static_cast<int>(b)) >= v) {
        if (binned_.bin_first(dim, static_cast<int>(b)) > v) return cum;
        const int begin =
            std::max(binned_.bin_begin_rank(dim, static_cast<int>(b)),
                     lo_rank_[static_cast<size_t>(dim)]);
        const int end =
            std::min(binned_.bin_begin_rank(dim, static_cast<int>(b) + 1),
                     hi_rank_[static_cast<size_t>(dim)]);
        // Value-sorted segment: full-segment masked count == early-break
        // walk, as in CountLess.
        cum += util::MaskedCountBelow(col.data(), in_box_.data(),
                                      sorted.data() + begin, end - begin, v,
                                      /*strict=*/false);
        return cum;
      }
      cum += counts[b];
    }
    return cum;
  }

  // Sum of y over the first `count` in-box rows of `dim` in value order --
  // the exact accumulation order of the sorted kernel's prefix sums.
  double SumYFirst(int dim, int count) const {
    const std::vector<int>& sorted = index_.sorted_rows(dim);
    double sum = 0.0;
    int seen = 0;
    for (int pos = lo_rank_[static_cast<size_t>(dim)]; seen < count; ++pos) {
      const int r = sorted[static_cast<size_t>(pos)];
      if (!in_box_[static_cast<size_t>(r)]) continue;
      sum += train_.y(r);
      ++seen;
    }
    return sum;
  }

  // Sum of y over in-box rows of `dim` from in-box rank `from_rank` to the
  // top, accumulated ascending like the sorted kernel's suffix sums.
  double SumYTail(int dim, int from_rank) const {
    const std::vector<int>& counts = bin_count_[static_cast<size_t>(dim)];
    const std::vector<int>& sorted = index_.sorted_rows(dim);
    // Locate the permutation position of in-box rank from_rank, then sum
    // ascending through the remaining window.
    int cum = 0;
    int start = hi_rank_[static_cast<size_t>(dim)];
    for (size_t b = 0; b < counts.size(); ++b) {
      const int c = counts[b];
      if (cum + c <= from_rank) {
        cum += c;
        continue;
      }
      int need = from_rank - cum;
      const int begin =
          std::max(binned_.bin_begin_rank(dim, static_cast<int>(b)),
                   lo_rank_[static_cast<size_t>(dim)]);
      for (int pos = begin;; ++pos) {
        const int r = sorted[static_cast<size_t>(pos)];
        if (!in_box_[static_cast<size_t>(r)]) continue;
        if (need == 0) {
          start = pos;
          break;
        }
        --need;
      }
      break;
    }
    double sum = 0.0;
    for (int pos = start; pos < hi_rank_[static_cast<size_t>(dim)]; ++pos) {
      const int r = sorted[static_cast<size_t>(pos)];
      if (in_box_[static_cast<size_t>(r)]) sum += train_.y(r);
    }
    return sum;
  }

  const Dataset& train_;
  const ColumnIndex& index_;
  const BinnedIndex& binned_;
  std::vector<uint8_t> in_box_;            // by row id
  int n_ = 0;                              // rows currently in box
  bool integral_labels_ = false;           // every y is exactly 0 or 1
  std::vector<int> lo_rank_;               // [dim] first in-window perm rank
  std::vector<int> hi_rank_;               // [dim] one past last window rank
  std::vector<std::vector<int>> bin_count_;   // [dim][bin] in-box rows
  std::vector<std::vector<double>> bin_pos_;  // [dim][bin] in-box y sum
};

// Streamed peel state: PRIM on the quantized plane alone. The dataset
// exists only as BinnedIndex codes, the index's own code-ordered
// permutation, and the label vector -- no raw doubles, no ColumnIndex.
// Candidates treat bins as atomic value blocks: the boundary bin replaces
// the exact order statistic and bounds snap to bin_first/bin_last. With
// one distinct value per bin this reproduces PeelState's decisions exactly
// (same candidate counts, same tie handling, same removed sums); with
// wider bins every cut is within the binning's rank error of the exact
// kernel's. Apply mirrors BinnedPeelState: walk only the removed window of
// the peeled dimension's permutation, decrementing per-bin aggregates.
class CodePeelState {
 public:
  CodePeelState(const BinnedIndex& binned, const std::vector<double>& y)
      : binned_(binned),
        y_(y),
        in_box_(static_cast<size_t>(binned.num_rows()), 1),
        n_(binned.num_rows()) {
    assert(binned.has_sorted_rows());
    const int m = binned.num_cols();
    const int n = binned.num_rows();
    lo_rank_.assign(static_cast<size_t>(m), 0);
    hi_rank_.assign(static_cast<size_t>(m), n);
    // As in BinnedPeelState: integral {0,1} labels make every removed-mass
    // sum integer-exact from per-bin aggregates; fractional labels fall
    // back to ordered permutation scans, which accumulate in (bin, row id)
    // order -- the sorted kernel's exact order when bins are single values.
    integral_labels_ = true;
    for (int r = 0; r < n && integral_labels_; ++r) {
      integral_labels_ = y[static_cast<size_t>(r)] == 0.0 ||
                         y[static_cast<size_t>(r)] == 1.0;
    }
    bin_count_.resize(static_cast<size_t>(m));
    bin_pos_.resize(static_cast<size_t>(m));
    for (int j = 0; j < m; ++j) {
      std::vector<int>& counts = bin_count_[static_cast<size_t>(j)];
      std::vector<double>& pos = bin_pos_[static_cast<size_t>(j)];
      counts.resize(static_cast<size_t>(binned.num_bins(j)));
      pos.assign(static_cast<size_t>(binned.num_bins(j)), 0.0);
      const ColumnView<int> sorted = binned.sorted_rows(j);
      for (int b = 0; b < binned.num_bins(j); ++b) {
        const int begin = binned.bin_begin_rank(j, b);
        const int len = binned.bin_begin_rank(j, b + 1) - begin;
        counts[static_cast<size_t>(b)] = len;
        if (integral_labels_) {
          // Reordering the gather-sum is exact for integer-valued labels.
          pos[static_cast<size_t>(b)] =
              util::GatherSum(y.data(), sorted.data() + begin, len);
        } else {
          for (int rank = begin; rank < begin + len; ++rank) {
            pos[static_cast<size_t>(b)] +=
                y[static_cast<size_t>(sorted[static_cast<size_t>(rank)])];
          }
        }
      }
    }
  }

  Peel MakeCandidate(int dim, bool low_side, double alpha,
                     const BoxStats& in_stats) const {
    Peel peel;
    const int n = n_;
    const int k = std::max(1, static_cast<int>(std::floor(alpha * n)));
    if (k >= n) return peel;  // would empty the box

    double removed_n = 0.0;
    double removed_pos = 0.0;
    int b;
    if (low_side) {
      b = BinAtInBoxRank(dim, k);
      int p;
      double pos_below;
      PrefixBelow(dim, b, &p, &pos_below);
      if (p == 0) {
        // The cut was swallowed by the boundary bin: move past it, exactly
        // like the exact kernel moves past a tied block.
        const int q =
            p + bin_count_[static_cast<size_t>(dim)][static_cast<size_t>(b)];
        if (q >= n) return peel;  // dimension is constant in box
        b = BinAtInBoxRank(dim, q);
        PrefixBelow(dim, b, &p, &pos_below);
      }
      removed_n = p;
      removed_pos = integral_labels_ ? pos_below : SumYFirst(dim, p);
      peel.bound = binned_.bin_first(dim, b);
    } else {
      b = BinAtInBoxRank(dim, n - 1 - k);
      int q;
      double pos_through;
      PrefixThrough(dim, b, &q, &pos_through);
      if (q >= n) {
        int p;
        double ignored;
        PrefixBelow(dim, b, &p, &ignored);
        if (p == 0) return peel;  // dimension is constant in box
        b = BinAtInBoxRank(dim, p - 1);
        PrefixThrough(dim, b, &q, &pos_through);
      }
      removed_n = n - q;
      removed_pos = integral_labels_ ? in_stats.n_pos - pos_through
                                     : SumYTail(dim, q);
      peel.bound = binned_.bin_last(dim, b);
    }
    if (removed_n >= n) return peel;  // would empty the box

    peel.dim = dim;
    peel.low_side = low_side;
    peel.bin = b;
    peel.removed_n = removed_n;
    peel.removed_pos = removed_pos;
    peel.precision_after =
        (in_stats.n_pos - removed_pos) / (in_stats.n - removed_n);
    return peel;
  }

  void Apply(const Peel& peel, BoxStats* stats) {
    const ColumnView<int> sorted = binned_.sorted_rows(peel.dim);
    if (peel.low_side) {
      const int new_lo = binned_.bin_begin_rank(peel.dim, peel.bin);
      for (int pos = lo_rank_[static_cast<size_t>(peel.dim)]; pos < new_lo;
           ++pos) {
        Remove(sorted[static_cast<size_t>(pos)]);
      }
      lo_rank_[static_cast<size_t>(peel.dim)] = new_lo;
    } else {
      const int new_hi = binned_.bin_begin_rank(peel.dim, peel.bin + 1);
      for (int pos = new_hi; pos < hi_rank_[static_cast<size_t>(peel.dim)];
           ++pos) {
        Remove(sorted[static_cast<size_t>(pos)]);
      }
      hi_rank_[static_cast<size_t>(peel.dim)] = new_hi;
    }
    stats->n -= peel.removed_n;
    stats->n_pos -= peel.removed_pos;
    for (size_t j = 0; j < bin_count_.size(); ++j) {
      const ColumnView<int> s = binned_.sorted_rows(static_cast<int>(j));
      int& lo = lo_rank_[j];
      int& hi = hi_rank_[j];
      while (lo < hi && !in_box_[static_cast<size_t>(
                            s[static_cast<size_t>(lo)])]) {
        ++lo;
      }
      while (hi > lo && !in_box_[static_cast<size_t>(
                            s[static_cast<size_t>(hi - 1)])]) {
        --hi;
      }
    }
  }

 private:
  void Remove(int r) {
    if (!in_box_[static_cast<size_t>(r)]) return;
    in_box_[static_cast<size_t>(r)] = 0;
    --n_;
    const double y = y_[static_cast<size_t>(r)];
    for (size_t j = 0; j < bin_count_.size(); ++j) {
      const int b = binned_.code(static_cast<int>(j), r);
      --bin_count_[j][static_cast<size_t>(b)];
      bin_pos_[j][static_cast<size_t>(b)] -= y;
    }
  }

  // Bin holding the rank-th in-box row of `dim` (ascending by bin).
  int BinAtInBoxRank(int dim, int rank) const {
    const std::vector<int>& counts = bin_count_[static_cast<size_t>(dim)];
    int cum = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      cum += counts[b];
      if (cum > rank) return static_cast<int>(b);
    }
    assert(false && "in-box rank out of range");
    return static_cast<int>(counts.size()) - 1;
  }

  // In-box rows and label mass in bins strictly below b.
  void PrefixBelow(int dim, int b, int* count, double* pos) const {
    const std::vector<int>& counts = bin_count_[static_cast<size_t>(dim)];
    const std::vector<double>& pos_sums = bin_pos_[static_cast<size_t>(dim)];
    *count = 0;
    *pos = 0.0;
    for (int i = 0; i < b; ++i) {
      *count += counts[static_cast<size_t>(i)];
      *pos += pos_sums[static_cast<size_t>(i)];
    }
  }

  // In-box rows and label mass in bins up to and including b.
  void PrefixThrough(int dim, int b, int* count, double* pos) const {
    PrefixBelow(dim, b + 1, count, pos);
  }

  // Sum of y over the first `count` in-box rows of `dim` in (bin, row id)
  // order -- the sorted kernel's exact accumulation order for single-value
  // bins. Fractional-label path only.
  double SumYFirst(int dim, int count) const {
    const ColumnView<int> sorted = binned_.sorted_rows(dim);
    double sum = 0.0;
    int seen = 0;
    for (int pos = lo_rank_[static_cast<size_t>(dim)]; seen < count; ++pos) {
      const int r = sorted[static_cast<size_t>(pos)];
      if (!in_box_[static_cast<size_t>(r)]) continue;
      sum += y_[static_cast<size_t>(r)];
      ++seen;
    }
    return sum;
  }

  // Sum of y over in-box rows of `dim` from in-box rank `from_rank` up,
  // accumulated ascending. Fractional-label path only.
  double SumYTail(int dim, int from_rank) const {
    const ColumnView<int> sorted = binned_.sorted_rows(dim);
    double sum = 0.0;
    int seen = 0;
    for (int pos = lo_rank_[static_cast<size_t>(dim)];
         pos < hi_rank_[static_cast<size_t>(dim)]; ++pos) {
      const int r = sorted[static_cast<size_t>(pos)];
      if (!in_box_[static_cast<size_t>(r)]) continue;
      if (seen >= from_rank) sum += y_[static_cast<size_t>(r)];
      ++seen;
    }
    return sum;
  }

  const BinnedIndex& binned_;
  const std::vector<double>& y_;
  std::vector<uint8_t> in_box_;            // by row id
  int n_ = 0;                              // rows currently in box
  bool integral_labels_ = false;           // every y is exactly 0 or 1
  std::vector<int> lo_rank_;               // [dim] first in-window perm rank
  std::vector<int> hi_rank_;               // [dim] one past last window rank
  std::vector<std::vector<int>> bin_count_;   // [dim][bin] in-box rows
  std::vector<std::vector<double>> bin_pos_;  // [dim][bin] in-box y sum
};

// One pasting expansion candidate: move a bound outward to re-admit roughly
// a paste_alpha share of the current box population.
struct Paste {
  int dim = -1;
  bool low_side = true;
  double bound = 0.0;
  double precision_after = -1.0;
  double added_n = 0.0;
};

// Pasting phase (Friedman & Fisher): greedily re-expand the selected box
// while train precision does not drop. Candidate enumeration walks the
// full-data sorted permutation beyond one bound, keeping rows whose only
// violation is that bound (viol == 1); selection and accounting are
// identical to the reference implementation.
void RunPastePhase(const Dataset& train, const Dataset& val,
                   const ColumnIndex& index, const PrimConfig& config,
                   double total_train_pos, double total_val_pos,
                   PrimResult* result) {
  const int dims = train.num_cols();
  Box pasted = result->BestBox();
  BoxStats stats = ComputeBoxStats(train, pasted);
  std::vector<int> viol = CountBoundViolations(index, pasted);
  std::vector<std::pair<double, double>> outside;  // (x_j, y)

  bool improved = true;
  while (improved && stats.n > 0.0) {
    improved = false;
    Paste best_paste;
    const int grow = std::max(
        1, static_cast<int>(std::floor(config.paste_alpha * stats.n)));
    for (int j = 0; j < dims; ++j) {
      const std::vector<int>& s = index.sorted_rows(j);
      for (bool low : {true, false}) {
        const double cur = low ? pasted.lo(j) : pasted.hi(j);
        if (!std::isfinite(cur)) continue;
        // Points outside only through this one bound.
        outside.clear();
        if (low) {
          const int end = index.LowerBoundRank(j, cur);
          for (int i = 0; i < end; ++i) {
            const int r = s[static_cast<size_t>(i)];
            if (viol[static_cast<size_t>(r)] != 1) continue;
            outside.emplace_back(train.x(r, j), train.y(r));
          }
        } else {
          const int begin = index.UpperBoundRank(j, cur);
          for (int i = begin; i < index.num_rows(); ++i) {
            const int r = s[static_cast<size_t>(i)];
            if (viol[static_cast<size_t>(r)] != 1) continue;
            outside.emplace_back(train.x(r, j), train.y(r));
          }
        }
        if (outside.empty()) continue;
        std::sort(outside.begin(), outside.end());
        if (!low) std::reverse(outside.begin(), outside.end());
        const int take = std::min<int>(grow, static_cast<int>(outside.size()));
        double add_n = 0.0, add_pos = 0.0;
        for (int t = 0; t < take; ++t) {
          add_n += 1.0;
          add_pos += outside[static_cast<size_t>(t)].second;
        }
        const double new_bound = outside[static_cast<size_t>(take - 1)].first;
        const double precision_after =
            (stats.n_pos + add_pos) / (stats.n + add_n);
        if (precision_after > best_paste.precision_after) {
          best_paste = {j, low, new_bound, precision_after, add_n};
        }
      }
    }
    const double current_precision = Precision(stats);
    if (best_paste.dim >= 0 &&
        best_paste.precision_after >= current_precision &&
        best_paste.added_n > 0.0) {
      const int j = best_paste.dim;
      const std::vector<int>& s = index.sorted_rows(j);
      // Rows admitted by the moved bound lose their dimension-j violation.
      int begin, end;
      if (best_paste.low_side) {
        begin = index.LowerBoundRank(j, best_paste.bound);
        end = index.LowerBoundRank(j, pasted.lo(j));
        pasted.set_lo(j, best_paste.bound);
      } else {
        begin = index.UpperBoundRank(j, pasted.hi(j));
        end = index.UpperBoundRank(j, best_paste.bound);
        pasted.set_hi(j, best_paste.bound);
      }
      for (int i = begin; i < end; ++i) {
        --viol[static_cast<size_t>(s[static_cast<size_t>(i)])];
      }
      stats = ComputeBoxStats(train, pasted);
      improved = true;
    }
  }

  if (!(pasted == result->BestBox())) {
    result->boxes.push_back(pasted);
    const BoxStats tr = ComputeBoxStats(train, pasted);
    const BoxStats va = ComputeBoxStats(val, pasted);
    result->train_curve.push_back({Recall(tr, total_train_pos), Precision(tr)});
    result->val_curve.push_back({Recall(va, total_val_pos), Precision(va)});
    result->best_val_index = static_cast<int>(result->boxes.size()) - 1;
  }
}

}  // namespace

std::vector<Box> PrimResult::ReturnedBoxes() const {
  return std::vector<Box>(boxes.begin(),
                          boxes.begin() + best_val_index + 1);
}


PrimResult RunPrim(const Dataset& train, const Dataset& val,
                   const PrimConfig& config, const ColumnIndex* train_index,
                   const BinnedIndex* train_binned) {
  assert(train.num_cols() == val.num_cols());
  assert(train.num_rows() > 0 && val.num_rows() > 0);
  std::shared_ptr<const ColumnIndex> owned;
  if (train_index == nullptr) {
    owned = ColumnIndex::Build(train);
    train_index = owned.get();
  }
  assert(train_index->num_rows() == train.num_rows());
  assert(train_index->num_cols() == train.num_cols());

  PrimResult result;
  if (config.backend == PrimPeelBackend::kBinned) {
    std::shared_ptr<const BinnedIndex> owned_binned;
    if (train_binned == nullptr) {
      owned_binned = BinnedIndex::Build(*train_index);
      train_binned = owned_binned.get();
    }
    assert(train_binned->num_rows() == train.num_rows());
    assert(train_binned->num_cols() == train.num_cols());
    BinnedPeelState state(train, *train_index, *train_binned);
    obs::Span span("prim.peel");
    result = RunPeelingPhase(train.num_cols(),
                             static_cast<double>(train.num_rows()),
                             train.TotalPositive(), &val, config, &state);
  } else {
    PeelState state(train, *train_index);
    obs::Span span("prim.peel");
    result = RunPeelingPhase(train.num_cols(),
                             static_cast<double>(train.num_rows()),
                             train.TotalPositive(), &val, config, &state);
  }

  if (config.paste) {
    obs::Span span("prim.paste");
    RunPastePhase(train, val, *train_index, config, train.TotalPositive(),
                  val.TotalPositive(), &result);
  }
  return result;
}

PrimResult RunPrimStreamed(const BinnedIndex& binned,
                           const std::vector<double>& y,
                           const PrimConfig& config, const Dataset* val) {
  assert(binned.has_sorted_rows() &&
         "RunPrimStreamed needs a streamed/deserialized index with its own "
         "permutation");
  assert(static_cast<int>(y.size()) == binned.num_rows());
  assert(binned.num_rows() > 0);
  assert(val == nullptr || val->num_cols() == binned.num_cols());
  assert(val == nullptr || val->num_rows() > 0);
  double total_pos = 0.0;
  for (double v : y) total_pos += v;

  // The shared peeling loop on the quantized plane: CodePeelState is just
  // another peel-state backend, so the loop -- candidate selection,
  // validation tracking, box selection -- is the exact code the
  // materialized kernels run. Pasting needs raw training values, so it is
  // skipped.
  CodePeelState state(binned, y);
  obs::Span span("prim.peel");
  return RunPeelingPhase(binned.num_cols(),
                         static_cast<double>(binned.num_rows()), total_pos,
                         val, config, &state);
}

}  // namespace reds
