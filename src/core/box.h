// Hyperbox B = prod_j [lo_j, hi_j]: the rule form scenarios take
// ("IF a_j in [lo_j, hi_j] for all j THEN y = 1"). Unbounded sides are
// +/- infinity.
#ifndef REDS_CORE_BOX_H_
#define REDS_CORE_BOX_H_

#include <string>
#include <vector>

#include "core/dataset.h"

namespace reds {

/// Axis-aligned hyperbox over the input space.
class Box {
 public:
  Box() = default;

  /// Box with all dimensions unrestricted.
  static Box Unbounded(int dim);

  int dim() const { return static_cast<int>(lo_.size()); }

  double lo(int j) const { return lo_[static_cast<size_t>(j)]; }
  double hi(int j) const { return hi_[static_cast<size_t>(j)]; }
  void set_lo(int j, double v) { lo_[static_cast<size_t>(j)] = v; }
  void set_hi(int j, double v) { hi_[static_cast<size_t>(j)] = v; }

  /// True iff dimension j has a finite bound on either side.
  bool IsRestricted(int j) const;

  /// Number of restricted dimensions (the paper's #restricted; low values
  /// mean high interpretability).
  int NumRestricted() const;

  /// True iff the point (dim() doubles) satisfies lo_j <= x_j <= hi_j for
  /// every j.
  bool Contains(const double* x) const;

  /// Volume after clamping infinite sides to [domain_lo, domain_hi] per
  /// dimension (the paper's convention for consistency). Empty boxes give 0.
  double ClampedVolume(const std::vector<double>& domain_lo,
                       const std::vector<double>& domain_hi) const;

  /// Intersection (may be empty: some lo > hi).
  Box Intersect(const Box& other) const;

  /// Expands this subset-space box back to `full_dim` dimensions: dimension
  /// columns[j] of the result takes this box's bounds for j, all other
  /// dimensions are unrestricted. Used by PRIM-with-bumping's random feature
  /// subsets.
  Box LiftToFullSpace(int full_dim, const std::vector<int>& columns) const;

  /// Rule rendering, e.g. "0.12 <= a1 <= 0.74 AND a3 <= 0.5".
  /// Unrestricted dimensions are omitted; an empty rule prints "(any)".
  std::string ToString(const std::vector<std::string>& names = {}) const;

  bool operator==(const Box& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// Fractional-capable subgroup statistics: n = #points in the box,
/// n_pos = sum of their targets.
struct BoxStats {
  double n = 0.0;
  double n_pos = 0.0;
};

/// Counts points of d inside the box (box.dim() must equal d.num_cols()).
BoxStats ComputeBoxStats(const Dataset& d, const Box& box);

}  // namespace reds

#endif  // REDS_CORE_BOX_H_
