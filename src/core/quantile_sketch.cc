#include "core/quantile_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace reds {

QuantileSketch::QuantileSketch(double eps) : eps_(eps) {
  assert(eps > 0.0 && eps < 0.5);
  buffer_cap_ = std::max<size_t>(16, static_cast<size_t>(1.0 / (2.0 * eps)));
  buffer_.reserve(buffer_cap_);
}

int64_t QuantileSketch::GapBudget(int64_t n) const {
  return std::max<int64_t>(1, static_cast<int64_t>(2.0 * eps_ *
                                                   static_cast<double>(n)));
}

void QuantileSketch::Add(double v) {
  buffer_.push_back(v);
  if (buffer_.size() >= buffer_cap_) {
    Flush();
    Compress();
  }
}

void QuantileSketch::AddWeighted(double v, int64_t w) {
  if (w <= 0) return;
  Flush();
  const auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), v,
      [](const Tuple& t, double x) { return t.v < x; });
  if (it != tuples_.end() && it->v == v) {
    // w more copies of an already-summarized value: every rank at or past
    // this tuple shifts by exactly w, so growing its g keeps the summary
    // valid with no new uncertainty.
    it->g += w;
  } else {
    Tuple t;
    t.v = v;
    t.g = w;
    // A brand-new value inherits the classic GK insertion uncertainty from
    // its successor -- unless the successor is pure (its mass is all copies
    // of a larger value, so none of it can precede v) in which case only
    // the predecessor's own uncertainty remains. At either extreme it is
    // exact.
    if (it == tuples_.end() || it == tuples_.begin()) {
      t.delta = 0;
    } else if (it->pure) {
      t.delta = std::prev(it)->delta;
    } else {
      t.delta = it->g + it->delta - 1;
    }
    tuples_.insert(it, t);
  }
  n_ += w;
  Compress();
}

// Folds the sorted insert buffer into the tuple list. Equivalent to
// inserting the buffered values one at a time in ascending order: each
// lands as (v, g=1, delta) where delta is its successor's g + delta - 1
// (the classic GK insertion bound), or 0 when it is the running minimum or
// maximum -- so the extremes stay exact.
void QuantileSketch::Flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  size_t i = 0, j = 0;
  while (i < tuples_.size() || j < buffer_.size()) {
    // Existing tuples win ties so an equal-valued insert sees them as its
    // successor (conservative and deterministic).
    if (i < tuples_.size() &&
        (j >= buffer_.size() || tuples_[i].v <= buffer_[j])) {
      merged.push_back(tuples_[i]);
      ++i;
    } else {
      Tuple t;
      t.v = buffer_[j];
      t.g = 1;
      if (i >= tuples_.size()) {
        t.delta = 0;  // running maximum (everything seen so far is <= v)
      } else if (tuples_[i].pure) {
        // The successor's mass is all copies of its own (strictly larger)
        // value, so none of it precedes v: only the predecessor's
        // uncertainty carries over. Essential next to heavy weighted
        // tuples, whose g would otherwise poison every nearby insert.
        t.delta = merged.empty() ? 0 : merged.back().delta;
      } else {
        t.delta = tuples_[i].g + tuples_[i].delta - 1;
      }
      if (merged.empty()) t.delta = 0;  // running minimum
      merged.push_back(t);
      ++j;
    }
  }
  n_ += static_cast<int64_t>(buffer_.size());
  buffer_.clear();
  tuples_ = std::move(merged);
}

// One forward pass that greedily merges a tuple into its right neighbor
// whenever the combined gap stays within the budget. The first and last
// tuples always survive, keeping the stream minimum and maximum exact.
void QuantileSketch::Compress() const {
  if (tuples_.size() < 3) return;
  const int64_t budget = GapBudget(n_);
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_[0]);
  Tuple pending = tuples_[1];
  for (size_t i = 2; i < tuples_.size(); ++i) {
    Tuple next = tuples_[i];
    if (pending.g + next.g + next.delta <= budget) {
      // Absorb: next keeps its value and delta. Its mass now includes
      // pending's observations, so purity only survives when both tuples
      // carried copies of the same value.
      next.pure = next.pure && pending.pure && pending.v == next.v;
      next.g += pending.g;
      pending = next;
    } else {
      out.push_back(pending);
      pending = next;
    }
  }
  out.push_back(pending);
  tuples_ = std::move(out);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  assert(eps_ == other.eps_ && "merged sketches must share eps");
  other.Flush();
  Flush();
  if (other.tuples_.empty()) return;
  if (tuples_.empty()) {
    tuples_ = other.tuples_;
    n_ = other.n_;
    return;
  }
  // Merge-walk by value. A tuple keeps its g; its delta grows by the gap of
  // its successor in the *other* summary (the other stream may interleave
  // that many values before it), which preserves the combined gap budget:
  // g + delta' <= 2*eps*n_a + 2*eps*n_b = 2*eps*n.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  const std::vector<Tuple>& a = tuples_;
  const std::vector<Tuple>& b = other.tuples_;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        i < a.size() && (j >= b.size() || a[i].v <= b[j].v);
    const std::vector<Tuple>& self = take_a ? a : b;
    const std::vector<Tuple>& peer = take_a ? b : a;
    size_t& k = take_a ? i : j;
    const size_t peer_k = take_a ? j : i;
    Tuple t = self[k];
    if (peer_k < peer.size()) {
      if (peer[peer_k].pure) {
        // The peer successor's mass is all copies of its own (>= t.v)
        // value, so it cannot interleave below t.v; the uncertainty in how
        // many peer values precede t.v is the peer predecessor's delta.
        t.delta += peer_k > 0 ? peer[peer_k - 1].delta : 0;
      } else {
        t.delta += peer[peer_k].g + peer[peer_k].delta - 1;
      }
    }
    merged.push_back(t);
    ++k;
  }
  tuples_ = std::move(merged);
  n_ += other.n_;
  Compress();
}

double QuantileSketch::QueryRank(int64_t rank) const {
  Flush();
  if (tuples_.empty()) return 0.0;
  const int64_t r1 =
      std::clamp<int64_t>(rank, 0, n_ - 1) + 1;  // 1-based target
  // The first and last tuples are the exact stream extremes (delta 0,
  // never compressed away); answer extreme ranks from them directly.
  if (r1 <= 1) return tuples_.front().v;
  if (r1 >= n_) return tuples_.back().v;
  const double allowed = eps_ * static_cast<double>(n_);
  int64_t rmin = 0;
  double prev = tuples_[0].v;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const int64_t rmax = rmin + t.delta;
    // A pure tuple's g observations are all copies of t.v occupying g
    // consecutive ranks whose last lands in [rmin, rmax]; ranks in
    // (rmin - g + delta, rmin] are therefore covered no matter where the
    // run actually sits, and answering them with t.v is error-free. This
    // matters for weighted inserts, whose g can exceed the gap budget --
    // the generic bound below does not hold for them.
    if (t.pure && r1 > rmin - t.g + t.delta && r1 <= rmin) return t.v;
    if (static_cast<double>(rmax) > static_cast<double>(r1) + allowed) {
      return prev;
    }
    prev = t.v;
  }
  return tuples_.back().v;
}

double QuantileSketch::QueryQuantile(double q) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  return QueryRank(
      static_cast<int64_t>(std::llround(clamped * static_cast<double>(n - 1))));
}

size_t QuantileSketch::SummarySize() const {
  Flush();
  return tuples_.size();
}

void QuantileSketch::SerializeTo(util::ByteWriter* out) const {
  Flush();
  out->F64(eps_);
  out->U64(static_cast<uint64_t>(n_));
  out->U64(static_cast<uint64_t>(tuples_.size()));
  for (const Tuple& t : tuples_) {
    out->F64(t.v);
    out->U64(static_cast<uint64_t>(t.g));
    out->U64(static_cast<uint64_t>(t.delta));
    out->U8(t.pure ? 1 : 0);
  }
}

Result<QuantileSketch> QuantileSketch::DeserializeFrom(util::ByteReader* in) {
  const double eps = in->F64();
  const int64_t n = static_cast<int64_t>(in->U64());
  const uint64_t num_tuples = in->U64();
  if (!in->ok() || !(eps > 0.0) || eps >= 1.0 || n < 0) {
    return Status::InvalidArgument("quantile sketch: corrupt header");
  }
  if (num_tuples > in->remaining() / 25) {  // 8 + 8 + 8 + 1 bytes per tuple
    return Status::InvalidArgument("quantile sketch: truncated tuple list");
  }
  QuantileSketch sketch(eps);
  sketch.n_ = n;
  sketch.tuples_.resize(static_cast<size_t>(num_tuples));
  int64_t total_g = 0;
  double prev_v = 0.0;
  for (size_t i = 0; i < sketch.tuples_.size(); ++i) {
    Tuple& t = sketch.tuples_[i];
    t.v = in->F64();
    t.g = static_cast<int64_t>(in->U64());
    t.delta = static_cast<int64_t>(in->U64());
    t.pure = in->U8() != 0;
    if (t.g < 0 || t.delta < 0 || (i > 0 && t.v < prev_v)) {
      return Status::InvalidArgument("quantile sketch: invalid tuple");
    }
    prev_v = t.v;
    total_g += t.g;
  }
  if (!in->ok() || total_g != n) {
    return Status::InvalidArgument("quantile sketch: tuple mass mismatch");
  }
  return sketch;
}

}  // namespace reds
