#include "exp/bench_flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "functions/registry.h"

namespace reds::exp {

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= s.size()) {
    size_t end = s.find(',', begin);
    if (end == std::string::npos) end = s.size();
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

[[noreturn]] void PrintUsageAndExit(const char* prog, int code) {
  std::fprintf(stderr,
               "usage: %s [--full] [--reps K] [--threads T] [--seed S]\n"
               "          [--functions f1,f2,...] [--out DIR]\n"
               "          [--data-plan streamed|materialized]\n"
               "  --full       paper-scale parameters (also REDS_FULL=1)\n"
               "  --reps K     repetitions per cell\n"
               "  --threads T  worker threads (default: all cores)\n"
               "  --functions  comma-separated Table-1 function names\n"
               "  --out DIR    also write figure series as CSV files\n"
               "  --data-plan  REDS relabeled-data ingestion (default "
               "streamed)\n",
               prog);
  std::exit(code);
}

}  // namespace

BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  const char* env_full = std::getenv("REDS_FULL");
  if (env_full != nullptr && std::strcmp(env_full, "0") != 0 &&
      std::strcmp(env_full, "") != 0) {
    flags.full = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        PrintUsageAndExit(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--full") {
      flags.full = true;
    } else if (arg == "--reps") {
      flags.reps = std::atoi(next("--reps").c_str());
    } else if (arg == "--threads") {
      flags.threads = std::atoi(next("--threads").c_str());
    } else if (arg == "--seed") {
      flags.seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    } else if (arg == "--functions") {
      flags.functions = SplitCommas(next("--functions"));
    } else if (arg == "--out") {
      flags.out_dir = next("--out");
    } else if (arg == "--data-plan") {
      const std::string plan = next("--data-plan");
      if (plan == "streamed") {
        flags.data_plan = MethodDataPlan::kStreamed;
      } else if (plan == "materialized") {
        flags.data_plan = MethodDataPlan::kMaterialized;
      } else {
        std::fprintf(stderr, "--data-plan must be streamed or materialized\n");
        PrintUsageAndExit(argv[0], 2);
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsageAndExit(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsageAndExit(argv[0], 2);
    }
  }
  return flags;
}

int PickReps(const BenchFlags& flags, int quick_default, int full_default) {
  if (flags.reps > 0) return flags.reps;
  return flags.full ? full_default : quick_default;
}

std::vector<std::string> PickFunctions(const BenchFlags& flags) {
  if (!flags.functions.empty()) return flags.functions;
  if (flags.full) return fun::AllFunctionNames();
  // A diverse quick subset: stochastic, physical, high-dimensional, grid
  // simulator, and the paper's own function.
  return {"dalal3",  "borehole", "ellipse",     "ishigami",
          "morris",  "sobol",    "moon10hdc1",  "dsgc"};
}

}  // namespace reds::exp
