// Shared command-line handling for the bench binaries. Every bench runs a
// reduced version of its paper experiment by default and scales up to
// paper-sized parameters with --full (or REDS_FULL=1).
#ifndef REDS_EXP_BENCH_FLAGS_H_
#define REDS_EXP_BENCH_FLAGS_H_

#include <string>
#include <vector>

#include "core/method.h"

namespace reds::exp {

struct BenchFlags {
  bool full = false;         // --full / REDS_FULL=1: paper-scale parameters
  int reps = -1;             // --reps k: override repetition count
  int threads = 0;           // --threads t
  uint64_t seed = 42;        // --seed s
  std::vector<std::string> functions;  // --functions a,b,c
  std::string out_dir;       // --out dir: write figure CSVs here
  /// --data-plan streamed|materialized: how REDS methods ingest their L
  /// relabeled points (default: streamed, the PR 5 data plane; materialized
  /// reproduces the historical dense-matrix path for A/B comparisons).
  MethodDataPlan data_plan = MethodDataPlan::kStreamed;
};

/// Parses argv; prints usage and exits on --help or unknown flags.
BenchFlags ParseBenchFlags(int argc, char** argv);

/// Default repetition count: flags.reps if set, else full ? full_default :
/// quick_default.
int PickReps(const BenchFlags& flags, int quick_default, int full_default);

/// The function list for all-function experiments: flags.functions if given;
/// otherwise all 33 in full mode or a diverse 8-function subset in quick
/// mode.
std::vector<std::string> PickFunctions(const BenchFlags& flags);

}  // namespace reds::exp

#endif  // REDS_EXP_BENCH_FLAGS_H_
