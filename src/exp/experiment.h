// Experiment harness: runs a (function x method x N x repetition) matrix
// through the DiscoveryEngine, evaluating every run on an independent test
// set exactly as the paper's methodology prescribes (Section 8: many
// datasets, optimized hyperparameters, independent test data). Every bench
// binary is a thin wrapper over this runner.
#ifndef REDS_EXP_EXPERIMENT_H_
#define REDS_EXP_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/method.h"
#include "engine/discovery_engine.h"
#include "functions/datagen.h"
#include "functions/registry.h"

namespace reds::exp {

/// Metric containers live in the engine's result store; the historical exp
/// names stay valid for the bench binaries.
using MetricSet = engine::MetricSet;
using CellResult = engine::CellResult;

struct ExperimentConfig {
  std::vector<std::string> functions;
  std::vector<std::string> methods;
  std::vector<int> sizes = {400};
  int reps = 5;
  int test_size = 20000;
  /// Overrides the per-function default design (LHS / Halton), e.g. for the
  /// mixed-input and semi-supervised experiments.
  std::optional<fun::DesignKind> design_override;
  RunOptions options;
  int threads = 0;  // 0: hardware concurrency
  uint64_t seed = 42;
};

/// Runs the full matrix. Datasets depend only on (function, N, repetition),
/// so all methods see identical data -- enabling the paired Friedman tests.
class Runner {
 public:
  explicit Runner(ExperimentConfig config) : config_(std::move(config)) {}

  /// Executes all cells; idempotent.
  void Run();

  /// Result accessor (valid after Run()).
  const CellResult& cell(const std::string& function, const std::string& method,
                         int n) const;

  const ExperimentConfig& config() const { return config_; }

  /// Per-function mean of a metric for one method/N, across all configured
  /// functions (a row of the paper's Tables 3/4).
  std::vector<double> FunctionMeans(const std::string& method, int n,
                                    double MetricSet::* field) const;

  /// Mean consistency per function for one method/N.
  std::vector<double> FunctionConsistencies(const std::string& method,
                                            int n) const;

  /// The engine that executed the matrix (valid after Run()); exposes the
  /// result store and metamodel-cache statistics.
  const engine::DiscoveryEngine& discovery_engine() const {
    if (engine_ == nullptr) {
      throw std::logic_error("discovery_engine() before Run()");
    }
    return *engine_;
  }

 private:
  void RunImpl();
  std::string Key(const std::string& function, const std::string& method,
                  int n) const;

  ExperimentConfig config_;
  std::unique_ptr<engine::DiscoveryEngine> engine_;
  bool ran_ = false;
};

/// Relative change in percent, the paper's figure axis: 100 * (v - base) / base.
double RelativeChangePercent(double value, double baseline);

}  // namespace reds::exp

#endif  // REDS_EXP_EXPERIMENT_H_
