// Experiment harness: runs a (function x method x N x repetition) matrix in
// parallel, evaluating every run on an independent test set exactly as the
// paper's methodology prescribes (Section 8: many datasets, optimized
// hyperparameters, independent test data). Every bench binary is a thin
// wrapper over this runner.
#ifndef REDS_EXP_EXPERIMENT_H_
#define REDS_EXP_EXPERIMENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/method.h"
#include "functions/datagen.h"
#include "functions/registry.h"

namespace reds::exp {

/// Per-repetition quality measurements (all on the independent test set,
/// except runtime and the interpretability counts).
struct MetricSet {
  double pr_auc = 0.0;          // trajectory PR AUC on test data
  double precision = 0.0;       // last box precision on test data
  double recall = 0.0;          // last box recall on test data
  double wracc = 0.0;           // last box WRAcc on test data (BI methods)
  double restricted = 0.0;      // #restricted of the last box
  double irrel = 0.0;           // #irrelevantly restricted of the last box
  double runtime_seconds = 0.0;
};

/// All repetitions of one (function, method, N) cell.
struct CellResult {
  std::vector<MetricSet> reps;
  std::vector<Box> last_boxes;
  double consistency = 1.0;  // mean pairwise V_o/V_u of the last boxes

  MetricSet Mean() const;
  std::vector<double> Collect(double MetricSet::* field) const;
};

struct ExperimentConfig {
  std::vector<std::string> functions;
  std::vector<std::string> methods;
  std::vector<int> sizes = {400};
  int reps = 5;
  int test_size = 20000;
  /// Overrides the per-function default design (LHS / Halton), e.g. for the
  /// mixed-input and semi-supervised experiments.
  std::optional<fun::DesignKind> design_override;
  RunOptions options;
  int threads = 0;  // 0: hardware concurrency
  uint64_t seed = 42;
};

/// Runs the full matrix. Datasets depend only on (function, N, repetition),
/// so all methods see identical data -- enabling the paired Friedman tests.
class Runner {
 public:
  explicit Runner(ExperimentConfig config) : config_(std::move(config)) {}

  /// Executes all cells; idempotent.
  void Run();

  /// Result accessor (valid after Run()).
  const CellResult& cell(const std::string& function, const std::string& method,
                         int n) const;

  const ExperimentConfig& config() const { return config_; }

  /// Per-function mean of a metric for one method/N, across all configured
  /// functions (a row of the paper's Tables 3/4).
  std::vector<double> FunctionMeans(const std::string& method, int n,
                                    double MetricSet::* field) const;

  /// Mean consistency per function for one method/N.
  std::vector<double> FunctionConsistencies(const std::string& method,
                                            int n) const;

 private:
  std::string Key(const std::string& function, const std::string& method,
                  int n) const;

  ExperimentConfig config_;
  std::map<std::string, CellResult> cells_;
  bool ran_ = false;
};

/// Relative change in percent, the paper's figure axis: 100 * (v - base) / base.
double RelativeChangePercent(double value, double baseline);

}  // namespace reds::exp

#endif  // REDS_EXP_EXPERIMENT_H_
