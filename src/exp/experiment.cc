#include "exp/experiment.h"

#include <cassert>
#include <mutex>
#include <stdexcept>

#include "core/quality.h"
#include "util/thread_pool.h"

namespace reds::exp {

MetricSet CellResult::Mean() const {
  MetricSet mean;
  if (reps.empty()) return mean;
  for (const auto& m : reps) {
    mean.pr_auc += m.pr_auc;
    mean.precision += m.precision;
    mean.recall += m.recall;
    mean.wracc += m.wracc;
    mean.restricted += m.restricted;
    mean.irrel += m.irrel;
    mean.runtime_seconds += m.runtime_seconds;
  }
  const double n = static_cast<double>(reps.size());
  mean.pr_auc /= n;
  mean.precision /= n;
  mean.recall /= n;
  mean.wracc /= n;
  mean.restricted /= n;
  mean.irrel /= n;
  mean.runtime_seconds /= n;
  return mean;
}

std::vector<double> CellResult::Collect(double MetricSet::* field) const {
  std::vector<double> out;
  out.reserve(reps.size());
  for (const auto& m : reps) out.push_back(m.*field);
  return out;
}

double RelativeChangePercent(double value, double baseline) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (value - baseline) / baseline;
}

std::string Runner::Key(const std::string& function, const std::string& method,
                        int n) const {
  return function + "|" + method + "|" + std::to_string(n);
}

const CellResult& Runner::cell(const std::string& function,
                               const std::string& method, int n) const {
  const auto it = cells_.find(Key(function, method, n));
  if (it == cells_.end()) {
    throw std::out_of_range("no cell " + Key(function, method, n));
  }
  return it->second;
}

std::vector<double> Runner::FunctionMeans(const std::string& method, int n,
                                          double MetricSet::* field) const {
  std::vector<double> out;
  out.reserve(config_.functions.size());
  for (const auto& f : config_.functions) {
    const CellResult& c = cell(f, method, n);
    double sum = 0.0;
    for (const auto& m : c.reps) sum += m.*field;
    out.push_back(c.reps.empty() ? 0.0 : sum / static_cast<double>(c.reps.size()));
  }
  return out;
}

std::vector<double> Runner::FunctionConsistencies(const std::string& method,
                                                  int n) const {
  std::vector<double> out;
  out.reserve(config_.functions.size());
  for (const auto& f : config_.functions) {
    out.push_back(cell(f, method, n).consistency);
  }
  return out;
}

void Runner::Run() {
  if (ran_) return;
  ran_ = true;

  struct FunctionContext {
    std::unique_ptr<fun::TestFunction> function;
    fun::DesignKind design;
    Dataset test;
    std::vector<bool> relevant;
  };

  // Instantiate functions and their shared test sets up front.
  std::vector<FunctionContext> contexts;
  contexts.reserve(config_.functions.size());
  for (const auto& name : config_.functions) {
    auto fn = fun::MakeFunction(name);
    assert(fn.ok());
    FunctionContext ctx;
    ctx.function = std::move(*fn);
    ctx.design = config_.design_override.value_or(
        fun::DefaultDesignFor(*ctx.function));
    ctx.relevant = ctx.function->relevant();
    contexts.push_back(std::move(ctx));
  }
  {
    ThreadPool pool(config_.threads);
    for (size_t fi = 0; fi < contexts.size(); ++fi) {
      pool.Submit([this, &contexts, fi] {
        FunctionContext& ctx = contexts[fi];
        // Test data: same input distribution, fresh labels.
        ctx.test = fun::MakeScenarioDataset(
            *ctx.function, config_.test_size, ctx.design,
            DeriveSeed(config_.seed, 0x7e57ULL ^ (fi + 1)));
      });
    }
    pool.Wait();
  }

  // Pre-create all cells so worker threads only write into their own slots.
  for (const auto& f : config_.functions) {
    for (const auto& m : config_.methods) {
      for (int n : config_.sizes) {
        CellResult& c = cells_[Key(f, m, n)];
        c.reps.resize(static_cast<size_t>(config_.reps));
        c.last_boxes.resize(static_cast<size_t>(config_.reps));
      }
    }
  }

  ThreadPool pool(config_.threads);
  for (size_t fi = 0; fi < contexts.size(); ++fi) {
    for (int n : config_.sizes) {
      for (int rep = 0; rep < config_.reps; ++rep) {
        for (size_t mi = 0; mi < config_.methods.size(); ++mi) {
          pool.Submit([this, &contexts, fi, n, rep, mi] {
            const FunctionContext& ctx = contexts[fi];
            const std::string& method_name = config_.methods[mi];
            auto spec = MethodSpec::Parse(method_name);
            assert(spec.ok());

            // Data seed depends on (function, N, rep) only: all methods see
            // the same datasets (paired comparisons).
            const uint64_t data_seed = DeriveSeed(
                config_.seed,
                (fi + 1) * 1000003ULL + static_cast<uint64_t>(n) * 131ULL +
                    static_cast<uint64_t>(rep));
            const Dataset train = fun::MakeScenarioDataset(
                *ctx.function, n, ctx.design, data_seed);

            RunOptions options = config_.options;
            options.sampler = fun::SamplerFor(ctx.design);
            options.seed = DeriveSeed(data_seed, 0x6d ^ (mi + 1));

            const MethodOutput out = RunMethod(*spec, train, options);

            MetricSet metrics;
            metrics.pr_auc = 100.0 * PrAucOnData(out.trajectory, ctx.test);
            const BoxStats stats = ComputeBoxStats(ctx.test, out.last_box);
            metrics.precision = 100.0 * Precision(stats);
            metrics.recall =
                100.0 * Recall(stats, ctx.test.TotalPositive());
            metrics.wracc = 100.0 * WRAcc(stats, ctx.test.num_rows(),
                                          ctx.test.TotalPositive());
            metrics.restricted = out.last_box.NumRestricted();
            metrics.irrel = NumIrrelevantRestricted(out.last_box, ctx.relevant);
            metrics.runtime_seconds = out.runtime_seconds;

            CellResult& c =
                cells_[Key(config_.functions[fi], method_name, n)];
            c.reps[static_cast<size_t>(rep)] = metrics;
            c.last_boxes[static_cast<size_t>(rep)] = out.last_box;
          });
        }
      }
    }
  }
  pool.Wait();

  // Consistency: pairwise box overlap across repetitions; unit-cube domain.
  for (size_t fi = 0; fi < contexts.size(); ++fi) {
    const int dims = contexts[fi].function->dim();
    const std::vector<double> lo(static_cast<size_t>(dims), 0.0);
    const std::vector<double> hi(static_cast<size_t>(dims), 1.0);
    for (const auto& m : config_.methods) {
      for (int n : config_.sizes) {
        CellResult& c = cells_[Key(config_.functions[fi], m, n)];
        c.consistency = 100.0 * MeanPairwiseConsistency(c.last_boxes, lo, hi);
      }
    }
  }
}

}  // namespace reds::exp
