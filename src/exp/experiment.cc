#include "exp/experiment.h"

#include <stdexcept>

#include "util/thread_pool.h"

namespace reds::exp {

double RelativeChangePercent(double value, double baseline) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (value - baseline) / baseline;
}

std::string Runner::Key(const std::string& function, const std::string& method,
                        int n) const {
  return function + "|" + method + "|" + std::to_string(n);
}

const CellResult& Runner::cell(const std::string& function,
                               const std::string& method, int n) const {
  if (engine_ == nullptr) {
    throw std::out_of_range("no cell " + Key(function, method, n) +
                            " (Run() not called)");
  }
  return engine_->results().cell(Key(function, method, n));
}

std::vector<double> Runner::FunctionMeans(const std::string& method, int n,
                                          double MetricSet::* field) const {
  std::vector<double> out;
  out.reserve(config_.functions.size());
  for (const auto& f : config_.functions) {
    const CellResult& c = cell(f, method, n);
    double sum = 0.0;
    for (const auto& m : c.reps) sum += m.*field;
    out.push_back(c.reps.empty() ? 0.0 : sum / static_cast<double>(c.reps.size()));
  }
  return out;
}

std::vector<double> Runner::FunctionConsistencies(const std::string& method,
                                                  int n) const {
  std::vector<double> out;
  out.reserve(config_.functions.size());
  for (const auto& f : config_.functions) {
    out.push_back(cell(f, method, n).consistency);
  }
  return out;
}

void Runner::Run() {
  if (ran_) return;
  try {
    RunImpl();
    ran_ = true;
  } catch (...) {
    // Leave no partially populated result store behind a "ran" flag.
    engine_.reset();
    throw;
  }
}

void Runner::RunImpl() {
  struct FunctionContext {
    std::unique_ptr<fun::TestFunction> function;
    fun::DesignKind design;
    std::shared_ptr<const Dataset> test;
    std::shared_ptr<const std::vector<bool>> relevant;
  };

  // Instantiate functions and their shared test sets up front.
  std::vector<FunctionContext> contexts;
  contexts.reserve(config_.functions.size());
  for (const auto& name : config_.functions) {
    auto fn = fun::MakeFunction(name);
    if (!fn.ok()) {
      throw std::invalid_argument("unknown function '" + name +
                                  "': " + fn.status().ToString());
    }
    FunctionContext ctx;
    ctx.function = std::move(*fn);
    ctx.design = config_.design_override.value_or(
        fun::DefaultDesignFor(*ctx.function));
    ctx.relevant =
        std::make_shared<const std::vector<bool>>(ctx.function->relevant());
    contexts.push_back(std::move(ctx));
  }
  {
    ThreadPool pool(config_.threads);
    for (size_t fi = 0; fi < contexts.size(); ++fi) {
      pool.Submit([this, &contexts, fi] {
        FunctionContext& ctx = contexts[fi];
        // Test data: same input distribution, fresh labels.
        ctx.test = std::make_shared<const Dataset>(fun::MakeScenarioDataset(
            *ctx.function, config_.test_size, ctx.design,
            DeriveSeed(config_.seed, 0x7e57ULL ^ (fi + 1))));
      });
    }
    pool.Wait();
  }

  // All cells run as discovery requests on a shared engine; REDS metamodels
  // are cached across method variants of the same (function, N, rep)
  // dataset, and REDS + PRIM cells stream their L relabeled points through
  // the quantized plane (RunOptions::data_plan, default streamed) instead
  // of materializing them per job.
  engine::EngineConfig engine_config;
  engine_config.threads = config_.threads;
  engine_config.seed = config_.seed;
  engine_config.stream_block_rows = config_.options.stream_block_rows;
  engine_ = std::make_unique<engine::DiscoveryEngine>(engine_config);

  // Pre-size all cells so results land in stable slots.
  for (const auto& f : config_.functions) {
    for (const auto& m : config_.methods) {
      for (int n : config_.sizes) {
        engine_->results().Reserve(Key(f, m, n), config_.reps);
      }
    }
  }

  // Submission order: method outermost, so consecutive jobs target
  // *different* datasets. Were the M method variants of one dataset
  // adjacent, the first worker to start a REDS job would fit the shared
  // metamodel while its neighbours block on the same cache entry instead
  // of working on other cells.
  std::vector<engine::JobHandle> jobs;
  jobs.reserve(contexts.size() * config_.methods.size() *
               config_.sizes.size() * static_cast<size_t>(config_.reps));
  for (size_t mi = 0; mi < config_.methods.size(); ++mi) {
    for (size_t fi = 0; fi < contexts.size(); ++fi) {
      const FunctionContext& ctx = contexts[fi];
      for (int n : config_.sizes) {
        for (int rep = 0; rep < config_.reps; ++rep) {
          // Data seed depends on (function, N, rep) only: all methods see
          // the same datasets (paired comparisons), and the engine's
          // metamodel cache fits each (dataset, metamodel kind)
          // combination once.
          const uint64_t data_seed = DeriveSeed(
              config_.seed,
              (fi + 1) * 1000003ULL + static_cast<uint64_t>(n) * 131ULL +
                  static_cast<uint64_t>(rep));
          engine::DiscoveryRequest request;
          request.make_train = [&ctx, n, data_seed] {
            return fun::MakeScenarioDataset(*ctx.function, n, ctx.design,
                                            data_seed);
          };
          request.method = config_.methods[mi];
          request.options = config_.options;
          request.options.sampler = fun::SamplerFor(ctx.design);
          request.options.seed = DeriveSeed(data_seed, 0x6d ^ (mi + 1));
          request.test = ctx.test;
          request.relevant = ctx.relevant;
          request.cell = Key(config_.functions[fi], config_.methods[mi], n);
          request.rep = rep;
          request.keep_output = false;
          jobs.push_back(engine_->Submit(std::move(request)));
        }
      }
    }
  }
  engine_->WaitAll();
  for (const auto& job : jobs) {
    if (job->state() == engine::JobState::kFailed) {
      throw std::runtime_error("discovery job '" + job->request().cell +
                               "' failed: " + job->error());
    }
  }

  // Consistency: pairwise box overlap across repetitions; unit-cube domain.
  for (size_t fi = 0; fi < contexts.size(); ++fi) {
    const int dims = contexts[fi].function->dim();
    const std::vector<double> lo(static_cast<size_t>(dims), 0.0);
    const std::vector<double> hi(static_cast<size_t>(dims), 1.0);
    for (const auto& m : config_.methods) {
      for (int n : config_.sizes) {
        engine_->results().ComputeConsistency(Key(config_.functions[fi], m, n),
                                              lo, hi);
      }
    }
  }

  // The engine outlives Run() (it owns the result store the accessors
  // read); the fitted metamodels are dead weight from here on, and the
  // worker pool would otherwise idle for the Runner's remaining lifetime.
  engine_->ClearMetamodelCache();
  engine_->Shutdown();
}

}  // namespace reds::exp
