#include "shard/wire.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace reds::shard {

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a worker that died mid-protocol must surface as an
    // IoError (EPIPE), not a process-killing SIGPIPE. Falls back to
    // write() for non-socket transports (pipes).
    ssize_t w = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) {
      w = ::write(fd, data + done, size - done);
    }
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("shard wire write: ") +
                             std::strerror(errno));
    }
    if (w == 0) return Status::IoError("shard wire write: zero-byte write");
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadAllBytes(int fd, char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t r = ::read(fd, data + done, size - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("shard wire read: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("shard wire read: unexpected end of stream");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MsgType type, const std::string& payload) {
  util::ByteWriter header;
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U8(static_cast<uint8_t>(type));
  Status s = WriteAll(fd, header.data().data(), header.size());
  if (!s.ok()) return s;
  if (payload.empty()) return Status::OK();
  return WriteAll(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd, size_t max_payload) {
  char header[5];
  Status s = ReadAllBytes(fd, header, sizeof(header));
  if (!s.ok()) return s;
  util::ByteReader reader(header, sizeof(header));
  const uint32_t length = reader.U32();
  const uint8_t type = reader.U8();
  if (length > max_payload) {
    return Status::IoError("shard wire read: oversized frame (" +
                           std::to_string(length) + " bytes)");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length);
  if (length > 0) {
    s = ReadAllBytes(fd, frame.payload.data(), length);
    if (!s.ok()) return s;
  }
  return frame;
}

std::string EncodeFrame(MsgType type, const std::string& payload) {
  util::ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U8(static_cast<uint8_t>(type));
  std::string bytes = w.data();
  bytes.append(payload);
  return bytes;
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (failed_) return Status::IoError("frame decoder already failed");
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, size);
  return CheckHeader();
}

Status FrameDecoder::CheckHeader() {
  if (buf_.size() - pos_ < 5) return Status::OK();
  util::ByteReader reader(buf_.data() + pos_, 5);
  const uint32_t length = reader.U32();
  if (length > max_payload_) {
    failed_ = true;
    return Status::IoError("frame decoder: oversized frame (" +
                           std::to_string(length) + " bytes)");
  }
  return Status::OK();
}

bool FrameDecoder::Next(Frame* out) {
  if (failed_) return false;
  const size_t available = buf_.size() - pos_;
  if (available < 5) return false;
  util::ByteReader reader(buf_.data() + pos_, 5);
  const uint32_t length = reader.U32();
  const uint8_t type = reader.U8();
  if (available < 5 + static_cast<size_t>(length)) return false;
  out->type = static_cast<MsgType>(type);
  out->payload.assign(buf_, pos_ + 5, length);
  pos_ += 5 + static_cast<size_t>(length);
  // A new frame header is now at the front; re-validate it eagerly so the
  // oversize check does not wait for the next Feed.
  (void)CheckHeader();
  return true;
}

void FrameWriteQueue::Push(MsgType type, const std::string& payload) {
  std::string bytes = EncodeFrame(type, payload);
  pending_bytes_ += bytes.size();
  pending_.push_back(std::move(bytes));
}

Status FrameWriteQueue::Flush(int fd, bool* blocked) {
  *blocked = false;
  while (!pending_.empty()) {
    const std::string& front = pending_.front();
    const char* data = front.data() + front_offset_;
    const size_t size = front.size() - front_offset_;
    ssize_t w = ::send(fd, data, size, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, size);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *blocked = true;
        return Status::OK();
      }
      return Status::IoError(std::string("frame write: ") +
                             std::strerror(errno));
    }
    if (w == 0) return Status::IoError("frame write: zero-byte write");
    front_offset_ += static_cast<size_t>(w);
    pending_bytes_ -= static_cast<size_t>(w);
    if (front_offset_ == front.size()) {
      pending_.pop_front();
      front_offset_ = 0;
    }
  }
  return Status::OK();
}

Result<Frame> ExpectFrame(int fd, MsgType expected, size_t max_payload) {
  Result<Frame> frame = ReadFrame(fd, max_payload);
  if (!frame.ok()) return frame;
  if (frame->type != expected) {
    return Status::IoError(
        "shard protocol: expected message type " +
        std::to_string(static_cast<int>(expected)) + ", got " +
        std::to_string(static_cast<int>(frame->type)));
  }
  return frame;
}

}  // namespace reds::shard
