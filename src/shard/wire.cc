#include "shard/wire.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace reds::shard {

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a worker that died mid-protocol must surface as an
    // IoError (EPIPE), not a process-killing SIGPIPE. Falls back to
    // write() for non-socket transports (pipes).
    ssize_t w = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) {
      w = ::write(fd, data + done, size - done);
    }
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("shard wire write: ") +
                             std::strerror(errno));
    }
    if (w == 0) return Status::IoError("shard wire write: zero-byte write");
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadAllBytes(int fd, char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t r = ::read(fd, data + done, size - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("shard wire read: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("shard wire read: unexpected end of stream");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MsgType type, const std::string& payload) {
  util::ByteWriter header;
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U8(static_cast<uint8_t>(type));
  Status s = WriteAll(fd, header.data().data(), header.size());
  if (!s.ok()) return s;
  if (payload.empty()) return Status::OK();
  return WriteAll(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd, size_t max_payload) {
  char header[5];
  Status s = ReadAllBytes(fd, header, sizeof(header));
  if (!s.ok()) return s;
  util::ByteReader reader(header, sizeof(header));
  const uint32_t length = reader.U32();
  const uint8_t type = reader.U8();
  if (length > max_payload) {
    return Status::IoError("shard wire read: oversized frame (" +
                           std::to_string(length) + " bytes)");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length);
  if (length > 0) {
    s = ReadAllBytes(fd, frame.payload.data(), length);
    if (!s.ok()) return s;
  }
  return frame;
}

Result<Frame> ExpectFrame(int fd, MsgType expected, size_t max_payload) {
  Result<Frame> frame = ReadFrame(fd, max_payload);
  if (!frame.ok()) return frame;
  if (frame->type != expected) {
    return Status::IoError(
        "shard protocol: expected message type " +
        std::to_string(static_cast<int>(expected)) + ", got " +
        std::to_string(static_cast<int>(frame->type)));
  }
  return frame;
}

}  // namespace reds::shard
