#include "shard/coordinator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "core/prim_loop.h"
#include "ml/histogram.h"
#include "ml/tree_wire.h"
#include "shard/wire.h"

namespace reds::shard {

ShardCoordinator::ShardCoordinator(std::vector<int> worker_fds,
                                   StreamedBuildOptions options)
    : fds_(std::move(worker_fds)), options_(options) {
  assert(!fds_.empty());
}

Status ShardCoordinator::Broadcast(uint8_t type, const std::string& payload) {
  for (int fd : fds_) {
    Status s = WriteFrame(fd, static_cast<MsgType>(type), payload);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardCoordinator::Gather(uint8_t type,
                                std::vector<std::string>* payloads) {
  payloads->clear();
  payloads->reserve(fds_.size());
  for (int fd : fds_) {
    Result<Frame> frame = ExpectFrame(fd, static_cast<MsgType>(type));
    if (!frame.ok()) return frame.status();
    payloads->push_back(std::move(frame->payload));
  }
  return Status::OK();
}

Status ShardCoordinator::BuildGlobalBins() {
  const int cap = options_.max_bins;

  // Round 1: every worker sketches its shard; summaries fold in
  // worker-index order (deterministic even when a column overflowed into
  // its GK sketch, whose merge is order-dependent).
  util::ByteWriter req;
  req.I32(options_.block_rows);
  req.I32(cap);
  req.F64(options_.sketch_eps);
  Status s = Broadcast(static_cast<uint8_t>(MsgType::kSketchRequest),
                       req.data());
  if (!s.ok()) return s;
  std::vector<std::string> replies;
  s = Gather(static_cast<uint8_t>(MsgType::kSketchReply), &replies);
  if (!s.ok()) return s;

  int64_t n64 = 0;
  int m = -1;
  std::vector<ColumnSketch> acc;
  for (size_t w = 0; w < replies.size(); ++w) {
    util::ByteReader in(replies[w]);
    const int64_t n_w = static_cast<int64_t>(in.U64());
    const int m_w = in.I32();
    if (!in.ok() || n_w < 0 || m_w <= 0 || (m >= 0 && m_w != m)) {
      return Status::InvalidArgument(
          "shard coordinator: inconsistent sketch reply");
    }
    if (m < 0) {
      m = m_w;
      acc.assign(static_cast<size_t>(m), ColumnSketch(options_.sketch_eps));
    }
    n64 += n_w;
    for (int j = 0; j < m; ++j) {
      Result<ColumnSketch> cs = ColumnSketch::DeserializeFrom(&in);
      if (!cs.ok()) return cs.status();
      acc[static_cast<size_t>(j)].MergeFrom(*cs, cap);
    }
  }
  if (n64 == 0) return Status::InvalidArgument("sharded stream is empty");
  if (n64 > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("sharded stream exceeds 2^31 rows");
  }
  const int n = static_cast<int>(n64);

  // Global bin upper bounds via the exact BuildStreamed derivation.
  bool any_sketch = false;
  std::vector<std::vector<double>> upper(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    ColumnSketch& cs = acc[static_cast<size_t>(j)];
    any_sketch = any_sketch || cs.overflow;
    upper[static_cast<size_t>(j)] = StreamedBinUpperBounds(&cs, n, cap);
  }

  // Round 2: broadcast the bounds; every worker codes its rows against
  // them and ships its per-raw-bin coding stats; stats are additive.
  util::ByteWriter bins_msg;
  bins_msg.I32(m);
  for (int j = 0; j < m; ++j) bins_msg.VecF64(upper[static_cast<size_t>(j)]);
  s = Broadcast(static_cast<uint8_t>(MsgType::kBins), bins_msg.data());
  if (!s.ok()) return s;
  s = Gather(static_cast<uint8_t>(MsgType::kCodingReply), &replies);
  if (!s.ok()) return s;

  std::vector<BinCodingStats> stats(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    stats[static_cast<size_t>(j)].Reset(upper[static_cast<size_t>(j)].size());
  }
  for (size_t w = 0; w < replies.size(); ++w) {
    util::ByteReader in(replies[w]);
    const int64_t n_w = static_cast<int64_t>(in.U64());
    (void)n_w;
    for (int j = 0; j < m; ++j) {
      BinCodingStats part;
      part.count = in.VecI32();
      part.vmin = in.VecF64();
      part.vmax = in.VecF64();
      if (!in.ok() ||
          part.count.size() != upper[static_cast<size_t>(j)].size()) {
        return Status::InvalidArgument(
            "shard coordinator: bad coding stats reply");
      }
      stats[static_cast<size_t>(j)].MergeFrom(part);
    }
  }

  // Assemble the final layout from the fleet-summed stats -- the same
  // AssembleColumnBins call BuildStreamed makes per column, on identical
  // inputs, so the global layout equals the single-process one.
  bins_.num_rows = n;
  bins_.num_cols = m;
  bins_.kind = any_sketch ? BinnedIndex::BuildKind::kSketch
                          : BinnedIndex::BuildKind::kExactPack;
  bins_.num_bins.assign(static_cast<size_t>(m), 0);
  bins_.bin_first.assign(static_cast<size_t>(m), {});
  bins_.bin_last.assign(static_cast<size_t>(m), {});
  util::ByteWriter layout_msg;
  for (int j = 0; j < m; ++j) {
    ColumnBinLayout layout =
        AssembleColumnBins(stats[static_cast<size_t>(j)], n);
    layout_msg.I32(layout.live);
    layout_msg.VecU8(layout.remap);
    bins_.num_bins[static_cast<size_t>(j)] = layout.live;
    bins_.bin_first[static_cast<size_t>(j)] = std::move(layout.first);
    bins_.bin_last[static_cast<size_t>(j)] = std::move(layout.last);
  }
  s = Broadcast(static_cast<uint8_t>(MsgType::kLayout), layout_msg.data());
  if (!s.ok()) return s;
  return Gather(static_cast<uint8_t>(MsgType::kLayoutAck), &replies);
}

Status ShardCoordinator::RefreshAggregates(
    const std::vector<std::string>& payloads) {
  const int m = bins_.num_cols;
  box_n_ = 0;
  bin_count_.assign(static_cast<size_t>(m), {});
  bin_pos_.assign(static_cast<size_t>(m), {});
  for (int j = 0; j < m; ++j) {
    bin_count_[static_cast<size_t>(j)].assign(
        static_cast<size_t>(bins_.num_bins[static_cast<size_t>(j)]), 0);
    bin_pos_[static_cast<size_t>(j)].assign(
        static_cast<size_t>(bins_.num_bins[static_cast<size_t>(j)]), 0.0);
  }
  for (const std::string& payload : payloads) {
    util::ByteReader in(payload);
    box_n_ += static_cast<int64_t>(in.U64());
    for (int j = 0; j < m; ++j) {
      const std::vector<int> count = in.VecI32();
      const std::vector<double> pos = in.VecF64();
      if (!in.ok() ||
          count.size() != bin_count_[static_cast<size_t>(j)].size()) {
        return Status::InvalidArgument(
            "shard coordinator: bad aggregate reply");
      }
      for (size_t b = 0; b < count.size(); ++b) {
        bin_count_[static_cast<size_t>(j)][b] += count[b];
        bin_pos_[static_cast<size_t>(j)][b] += pos[b];
      }
    }
  }
  return Status::OK();
}

// The fleet peel state RunPeelingPhase drives. MakeCandidate is
// CodePeelState's integral-label candidate logic verbatim, evaluated on the
// globally-summed aggregates (the candidate is a pure function of them, so
// no communication happens until a peel is applied). Apply is one
// broadcast + gather round: workers remove the peeled rows from their
// partition and reply with full updated local aggregates, which re-sum
// exactly (integer counts; {0,1} label masses).
struct FleetPeelState {
  ShardCoordinator* coord;
  Status error = Status::OK();

  int n() const { return static_cast<int>(coord->box_n_); }

  Peel MakeCandidate(int dim, bool low_side, double alpha,
                     const BoxStats& in_stats) const {
    Peel peel;
    const int n_box = n();
    const int k =
        std::max(1, static_cast<int>(std::floor(alpha * n_box)));
    if (k >= n_box) return peel;

    const GlobalBins& bins = coord->bins_;
    double removed_n = 0.0;
    double removed_pos = 0.0;
    int b;
    if (low_side) {
      b = BinAtInBoxRank(dim, k);
      int p;
      double pos_below;
      PrefixBelow(dim, b, &p, &pos_below);
      if (p == 0) {
        const int q =
            p + coord->bin_count_[static_cast<size_t>(dim)]
                               [static_cast<size_t>(b)];
        if (q >= n_box) return peel;  // dimension is constant in box
        b = BinAtInBoxRank(dim, q);
        PrefixBelow(dim, b, &p, &pos_below);
      }
      removed_n = p;
      removed_pos = pos_below;
      peel.bound = bins.bin_first[static_cast<size_t>(dim)]
                                 [static_cast<size_t>(b)];
    } else {
      b = BinAtInBoxRank(dim, n_box - 1 - k);
      int q;
      double pos_through;
      PrefixThrough(dim, b, &q, &pos_through);
      if (q >= n_box) {
        int p;
        double ignored;
        PrefixBelow(dim, b, &p, &ignored);
        if (p == 0) return peel;  // dimension is constant in box
        b = BinAtInBoxRank(dim, p - 1);
        PrefixThrough(dim, b, &q, &pos_through);
      }
      removed_n = n_box - q;
      removed_pos = in_stats.n_pos - pos_through;
      peel.bound = bins.bin_last[static_cast<size_t>(dim)]
                                [static_cast<size_t>(b)];
    }
    if (removed_n >= n_box) return peel;

    peel.dim = dim;
    peel.low_side = low_side;
    peel.bin = b;
    peel.removed_n = removed_n;
    peel.removed_pos = removed_pos;
    peel.precision_after =
        (in_stats.n_pos - removed_pos) / (in_stats.n - removed_n);
    return peel;
  }

  void Apply(const Peel& peel, BoxStats* stats) {
    util::ByteWriter msg;
    msg.I32(peel.dim);
    msg.U8(peel.low_side ? 1 : 0);
    msg.I32(peel.bin);
    Status s = coord->Broadcast(static_cast<uint8_t>(MsgType::kPeel),
                                msg.data());
    std::vector<std::string> replies;
    if (s.ok()) {
      s = coord->Gather(static_cast<uint8_t>(MsgType::kPeelReply), &replies);
    }
    if (s.ok()) s = coord->RefreshAggregates(replies);
    if (!s.ok()) {
      // Transport failure mid-peel: zero the state so the loop's next
      // candidate pass finds nothing and exits; RunPrim reports `error`.
      error = s;
      coord->box_n_ = 0;
      return;
    }
    stats->n -= peel.removed_n;
    stats->n_pos -= peel.removed_pos;
    assert(coord->box_n_ == static_cast<int64_t>(stats->n) &&
           "fleet aggregates drifted from the peel accounting");
  }

 private:
  int BinAtInBoxRank(int dim, int rank) const {
    const std::vector<int>& counts =
        coord->bin_count_[static_cast<size_t>(dim)];
    int cum = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      cum += counts[b];
      if (cum > rank) return static_cast<int>(b);
    }
    assert(false && "in-box rank out of range");
    return static_cast<int>(counts.size()) - 1;
  }

  void PrefixBelow(int dim, int b, int* count, double* pos) const {
    const std::vector<int>& counts =
        coord->bin_count_[static_cast<size_t>(dim)];
    const std::vector<double>& pos_sums =
        coord->bin_pos_[static_cast<size_t>(dim)];
    *count = 0;
    *pos = 0.0;
    for (int i = 0; i < b; ++i) {
      *count += counts[static_cast<size_t>(i)];
      *pos += pos_sums[static_cast<size_t>(i)];
    }
  }

  void PrefixThrough(int dim, int b, int* count, double* pos) const {
    PrefixBelow(dim, b + 1, count, pos);
  }
};

Result<PrimResult> ShardCoordinator::RunPrim(const PrimConfig& config) {
  if (bins_.num_rows == 0) {
    return Status::FailedPrecondition(
        "ShardCoordinator::RunPrim before BuildGlobalBins");
  }
  Status s = Broadcast(static_cast<uint8_t>(MsgType::kPeelInit), "");
  if (!s.ok()) return s;
  std::vector<std::string> replies;
  s = Gather(static_cast<uint8_t>(MsgType::kPeelInitReply), &replies);
  if (!s.ok()) return s;

  // Workers prepend an integral-labels flag to the init aggregates; the
  // distributed candidate math is exact only for {0,1} labels.
  std::vector<std::string> aggregates;
  aggregates.reserve(replies.size());
  for (const std::string& reply : replies) {
    if (reply.empty()) {
      return Status::InvalidArgument("shard coordinator: empty peel init");
    }
    if (reply[0] == 0) {
      return Status::InvalidArgument(
          "sharded PRIM requires integral {0,1} labels");
    }
    aggregates.push_back(reply.substr(1));
  }
  s = RefreshAggregates(aggregates);
  if (!s.ok()) return s;
  if (box_n_ != bins_.num_rows) {
    return Status::InvalidArgument(
        "shard coordinator: init aggregates disagree with the row count");
  }

  double total_pos = 0.0;
  for (double p : bin_pos_[0]) total_pos += p;

  FleetPeelState state{this};
  PrimResult result =
      RunPeelingPhase(bins_.num_cols, static_cast<double>(bins_.num_rows),
                      total_pos, /*val=*/nullptr, config, &state);
  if (!state.error.ok()) return state.error;
  return result;
}

namespace {

// Flat tree node matching RegressionTree's wire shape, so the distributed
// fit serializes through the shared tree_wire layout and materializes as a
// real RegressionTree.
struct FleetTreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;
};

}  // namespace

Result<ml::RegressionTree> ShardCoordinator::FitTree(
    const ml::TreeConfig& config) {
  if (bins_.num_rows == 0) {
    return Status::FailedPrecondition(
        "ShardCoordinator::FitTree before BuildGlobalBins");
  }
  if (config.backend != ml::SplitBackend::kHistogram) {
    return Status::InvalidArgument(
        "distributed tree fit supports the histogram backend only");
  }
  if (config.mtry > 0 && config.mtry < bins_.num_cols) {
    return Status::InvalidArgument(
        "distributed tree fit does not support mtry");
  }
  if (config.growth != ml::GrowthPolicy::kDepthWise) {
    return Status::InvalidArgument(
        "distributed tree fit grows depth-wise only");
  }

  Status s = Broadcast(static_cast<uint8_t>(MsgType::kTreeStart), "");
  if (!s.ok()) return s;
  std::vector<std::string> replies;
  s = Gather(static_cast<uint8_t>(MsgType::kTreeStartReply), &replies);
  if (!s.ok()) return s;
  Moments root;
  for (const std::string& reply : replies) {
    util::ByteReader in(reply);
    root.sum += in.F64();
    root.sum_sq += in.F64();
    root.count += static_cast<int64_t>(in.U64());
    if (!in.ok()) {
      return Status::InvalidArgument("shard coordinator: bad tree start");
    }
  }
  if (root.count != bins_.num_rows) {
    return Status::InvalidArgument(
        "shard coordinator: tree root count mismatch");
  }

  const int m = bins_.num_cols;
  std::vector<FleetTreeNode> nodes;
  int next_seg = 1;
  std::vector<std::vector<ml::HistBin>> merged(static_cast<size_t>(m));
  std::vector<ml::HistBin> scratch;

  // The exact BuildHistogram recursion, with worker rounds in place of row
  // scans: node created before its children (same indices), stop rules on
  // fleet-exact moments, the shared split scan on fleet-merged histograms,
  // children left-then-right.
  std::function<Result<int>(int, const Moments&, int)> fit_node =
      [&](int seg, const Moments& mom, int depth) -> Result<int> {
    const int n = static_cast<int>(mom.count);
    const int node_index = static_cast<int>(nodes.size());
    nodes.emplace_back();
    nodes.back().value = mom.sum / n;

    const bool depth_ok = config.max_depth < 0 || depth < config.max_depth;
    const double sse = mom.sum_sq - mom.sum * mom.sum / n;
    if (!depth_ok || n < config.min_samples_split || sse <= config.min_gain) {
      return node_index;
    }

    util::ByteWriter req;
    req.I32(seg);
    Status hs = Broadcast(static_cast<uint8_t>(MsgType::kTreeHist),
                          req.data());
    if (!hs.ok()) return hs;
    std::vector<std::string> hist_replies;
    hs = Gather(static_cast<uint8_t>(MsgType::kTreeHistReply), &hist_replies);
    if (!hs.ok()) return hs;
    for (int f = 0; f < m; ++f) {
      merged[static_cast<size_t>(f)].assign(
          static_cast<size_t>(bins_.num_bins[static_cast<size_t>(f)]),
          ml::HistBin{});
    }
    for (const std::string& reply : hist_replies) {
      util::ByteReader in(reply);
      for (int f = 0; f < m; ++f) {
        const int live = bins_.num_bins[static_cast<size_t>(f)];
        scratch.assign(static_cast<size_t>(live), ml::HistBin{});
        if (!ml::DeserializeHistogram(&in, scratch.data(), live)) {
          return Status::InvalidArgument(
              "shard coordinator: bad tree histogram reply");
        }
        ml::MergeHistogram(merged[static_cast<size_t>(f)].data(),
                           scratch.data(), live);
      }
    }

    // Serial feature order with a strict `gain >` -- exactly
    // BestSplitOverFeatures' merge discipline over the full feature set.
    ml::HistogramSplit best;
    best.gain = 0.0;
    for (int f = 0; f < m; ++f) {
      const ml::HistogramSplit cand = ml::ScanHistogramSplits(
          merged[static_cast<size_t>(f)].data(),
          bins_.num_bins[static_cast<size_t>(f)], f, mom.sum, n,
          config.min_samples_leaf, 0.0,
          [&](int b) {
            return bins_.bin_first[static_cast<size_t>(f)]
                                  [static_cast<size_t>(b)];
          },
          [&](int b) {
            return bins_.bin_last[static_cast<size_t>(f)]
                                 [static_cast<size_t>(b)];
          });
      if (cand.feature >= 0 && cand.gain > best.gain) best = cand;
    }
    if (best.feature < 0 || best.gain <= config.min_gain) return node_index;
    if (best.left_count == 0 || best.left_count == n) return node_index;

    const int left_seg = next_seg++;
    const int right_seg = next_seg++;
    util::ByteWriter split;
    split.I32(seg);
    split.I32(left_seg);
    split.I32(right_seg);
    split.I32(best.feature);
    split.I32(best.boundary_bin);
    hs = Broadcast(static_cast<uint8_t>(MsgType::kTreeSplit), split.data());
    if (!hs.ok()) return hs;
    std::vector<std::string> split_replies;
    hs = Gather(static_cast<uint8_t>(MsgType::kTreeSplitReply),
                &split_replies);
    if (!hs.ok()) return hs;
    Moments left_mom, right_mom;
    for (const std::string& reply : split_replies) {
      util::ByteReader in(reply);
      left_mom.sum += in.F64();
      left_mom.sum_sq += in.F64();
      left_mom.count += static_cast<int64_t>(in.U64());
      right_mom.sum += in.F64();
      right_mom.sum_sq += in.F64();
      right_mom.count += static_cast<int64_t>(in.U64());
      if (!in.ok()) {
        return Status::InvalidArgument(
            "shard coordinator: bad tree split reply");
      }
    }
    if (left_mom.count + right_mom.count != n ||
        left_mom.count != best.left_count) {
      return Status::InvalidArgument(
          "shard coordinator: tree split counts drifted (non-exact-pack "
          "bins?)");
    }

    Result<int> left = fit_node(left_seg, left_mom, depth + 1);
    if (!left.ok()) return left;
    Result<int> right = fit_node(right_seg, right_mom, depth + 1);
    if (!right.ok()) return right;
    nodes[static_cast<size_t>(node_index)].feature = best.feature;
    nodes[static_cast<size_t>(node_index)].threshold = best.threshold;
    nodes[static_cast<size_t>(node_index)].left = *left;
    nodes[static_cast<size_t>(node_index)].right = *right;
    return node_index;
  };

  Result<int> fit = fit_node(0, root, 0);
  Status finish = Broadcast(static_cast<uint8_t>(MsgType::kTreeFinish), "");
  if (!fit.ok()) return fit.status();
  if (!finish.ok()) return finish;

  util::ByteWriter wire;
  ml::SerializeTreeNodes(nodes, &FleetTreeNode::value, &wire);
  util::ByteReader reader(wire.data());
  ml::RegressionTree tree;
  Status parse = tree.DeserializeFrom(&reader, m);
  if (!parse.ok()) return parse;
  return tree;
}

Result<std::unique_ptr<ml::Metamodel>> ShardCoordinator::TuneAndFitSharded(
    ml::MetamodelKind kind, const Dataset& d, uint64_t seed,
    const ml::TuningConfig& config) {
  const int grid = ml::TuningGridSize(kind, d.num_cols(), config);
  if (grid <= 0) return Status::InvalidArgument("empty tuning grid");
  const int W = num_workers();

  // D is small (the paper's N ~ 1e3 design sample): ship it whole so each
  // worker evaluates its cells with full-data CV, exactly as TuneAndFit
  // would inline.
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(static_cast<size_t>(d.num_rows()) * d.num_cols());
  y.reserve(static_cast<size_t>(d.num_rows()));
  for (int r = 0; r < d.num_rows(); ++r) {
    const double* row = d.row(r);
    x.insert(x.end(), row, row + d.num_cols());
    y.push_back(d.y(r));
  }

  for (int w = 0; w < W; ++w) {
    std::vector<int> cells;
    for (int g = w; g < grid; g += W) cells.push_back(g);
    util::ByteWriter msg;
    msg.U8(static_cast<uint8_t>(kind));
    msg.U64(seed);
    msg.U8(static_cast<uint8_t>(config.budget));
    msg.I32(config.folds);
    msg.U8(static_cast<uint8_t>(config.backend));
    msg.U8(static_cast<uint8_t>(config.growth));
    msg.I32(config.max_leaves);
    msg.I32(d.num_cols());
    msg.VecF64(x);
    msg.VecF64(y);
    msg.VecI32(cells);
    Status s = WriteFrame(fds_[static_cast<size_t>(w)], MsgType::kTuneCells,
                          msg.data());
    if (!s.ok()) return s;
  }

  std::vector<double> losses(static_cast<size_t>(grid),
                             std::numeric_limits<double>::infinity());
  for (int w = 0; w < W; ++w) {
    Result<Frame> frame =
        ExpectFrame(fds_[static_cast<size_t>(w)], MsgType::kTuneReply);
    if (!frame.ok()) return frame.status();
    util::ByteReader in(frame->payload);
    const uint64_t count = in.U64();
    for (uint64_t i = 0; i < count && in.ok(); ++i) {
      const int cell = in.I32();
      const double loss = in.F64();
      if (cell < 0 || cell >= grid) {
        return Status::InvalidArgument("shard coordinator: bad tune cell");
      }
      losses[static_cast<size_t>(cell)] = loss;
    }
    if (!in.ok()) {
      return Status::InvalidArgument("shard coordinator: bad tune reply");
    }
  }

  // First-wins argmin in cell order == PickBest's `loss < best_loss` over
  // the same grid enumeration.
  double best_loss = std::numeric_limits<double>::infinity();
  int best = 0;
  for (int g = 0; g < grid; ++g) {
    if (losses[static_cast<size_t>(g)] < best_loss) {
      best_loss = losses[static_cast<size_t>(g)];
      best = g;
    }
  }
  return ml::TuningCellFit(kind, best, d, seed, config);
}

Status ShardCoordinator::CollectMetrics(obs::MetricsRegistry* registry) {
  Status s = Broadcast(static_cast<uint8_t>(MsgType::kMetricsRequest), "");
  if (!s.ok()) return s;
  std::vector<std::string> replies;
  s = Gather(static_cast<uint8_t>(MsgType::kMetricsReply), &replies);
  if (!s.ok()) return s;
  for (const std::string& reply : replies) {
    util::ByteReader in(reply);
    obs::RegistrySnapshot snapshot;
    if (!obs::RegistrySnapshot::DeserializeFrom(&in, &snapshot)) {
      return Status::InvalidArgument(
          "shard coordinator: bad metrics snapshot");
    }
    registry->MergeSnapshot(snapshot);
  }
  registry->gauge("shard.coordinator.workers")->Set(num_workers());
  registry->counter("shard.coordinator.metric_folds")
      ->Add(static_cast<uint64_t>(replies.size()));
  return Status::OK();
}

Status ShardCoordinator::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  return Broadcast(static_cast<uint8_t>(MsgType::kShutdown), "");
}

}  // namespace reds::shard
