// Length-prefixed message framing for the shard transport. One frame is
//   u32 payload length (little endian) | u8 message type | payload bytes
// written to / read from a plain file descriptor -- a socketpair between
// coordinator and in-process worker threads, a pipe to a forked worker, or
// a UNIX domain socket to a separate worker process all look the same
// here. Payloads are util/serialize byte streams, so everything that
// crosses the wire reuses the cache tier's (de)serializers and their
// bounds-checked parsing.
#ifndef REDS_SHARD_WIRE_H_
#define REDS_SHARD_WIRE_H_

#include <cstdint>
#include <deque>
#include <string>

#include "util/serialize.h"
#include "util/status.h"

namespace reds::shard {

/// Shard protocol message types. The coordinator speaks first; every
/// request type has one reply type so the protocol is a strict sequence of
/// (broadcast, gather) rounds and cannot deadlock.
enum class MsgType : uint8_t {
  // Binning rounds.
  kSketchRequest = 1,   // -> worker: run the sketch pass over your shard
  kSketchReply = 2,     // <- worker: per-column ColumnSketch summaries
  kBins = 3,            // -> worker: global per-column bin upper bounds
  kCodingReply = 4,     // <- worker: per-column BinCodingStats
  kLayout = 5,          // -> worker: final per-column bin layout (remap)
  kLayoutAck = 6,       // <- worker: local permutation built

  // PRIM rounds.
  kPeelInit = 7,        // -> worker: build the local peel state
  kPeelInitReply = 8,   // <- worker: initial local per-bin aggregates
  kPeel = 9,            // -> worker: apply (dim, side, boundary bin)
  kPeelReply = 10,      // <- worker: full updated local aggregates

  // Distributed tree-fit rounds.
  kTreeStart = 11,      // -> worker: init node 0 = all local rows
  kTreeStartReply = 12, // <- worker: local root moments (sum, sum_sq, n)
  kTreeHist = 13,       // -> worker: histogram the given node's segment
  kTreeHistReply = 14,  // <- worker: per-feature local histograms
  kTreeSplit = 15,      // -> worker: partition a node into two children
  kTreeSplitReply = 16, // <- worker: both children's local moments
  kTreeFinish = 17,     // -> worker: drop tree-fit state

  // Sharded CV tuning.
  kTuneCells = 18,      // -> worker: evaluate these grid cells on D
  kTuneReply = 19,      // <- worker: per-cell CV losses

  // Fleet observability + teardown.
  kMetricsRequest = 20, // -> worker: snapshot your registry
  kMetricsReply = 21,   // <- worker: serialized RegistrySnapshot
  kShutdown = 22,       // -> worker: exit the serve loop

  // Client-facing discovery service (src/net/). Numbered from 64 so the
  // trusted shard protocol and the hostile-peer service never share a
  // type byte; payload layouts live in net/protocol.h.
  kHello = 64,          // -> server: protocol version + client name
  kHelloAck = 65,       // <- server: version + admission limits
  kSubmit = 66,         // -> server: discovery request spec
  kSubmitAck = 67,      // <- server: admitted (flags carry exemption)
  kShed = 68,           // <- server: admission refused, retry-after
  kStatusPoll = 69,     // -> server: poll one request id
  kStatusReply = 70,    // <- server: job state + error
  kResultBoxes = 71,    // <- server: one chunk of trajectory boxes
  kResultDone = 72,     // <- server: final box + metrics, ends a request
  kMetricsScrape = 73,  // -> server: dump the engine registry
  kMetricsDump = 74,    // <- server: JSON / Prometheus text body
  kPing = 75,           // -> server: keepalive refresh
  kPong = 76,           // <- server
  kError = 77,          // <- server: malformed frame / bad request
};

/// One parsed frame: the type byte plus the raw payload bytes.
struct Frame {
  MsgType type = MsgType::kShutdown;
  std::string payload;
};

/// Writes one frame to `fd`, looping over partial writes / EINTR.
Status WriteFrame(int fd, MsgType type, const std::string& payload);

inline Status WriteFrame(int fd, MsgType type, const util::ByteWriter& w) {
  return WriteFrame(fd, type, w.data());
}

/// Reads one frame from `fd` (blocking), looping over partial reads /
/// EINTR. Fails on EOF, short frames, or a declared payload above
/// `max_payload` (64 MiB default -- far above any real shard message, so a
/// corrupted length cannot trigger an absurd allocation).
Result<Frame> ReadFrame(int fd, size_t max_payload = 64ull << 20);

/// Reads one frame and checks its type.
Result<Frame> ExpectFrame(int fd, MsgType expected,
                          size_t max_payload = 64ull << 20);

/// Encodes one frame (header + payload) into a contiguous byte string --
/// what WriteFrame puts on the wire, reusable by buffered writers.
std::string EncodeFrame(MsgType type, const std::string& payload);

/// Incremental frame parser for nonblocking sockets. Feed() appends
/// whatever bytes recv() produced; Next() extracts complete frames as they
/// become available. A declared payload length above `max_payload` fails
/// Feed() as soon as the 5 header bytes are buffered -- before any payload
/// arrives -- so a hostile peer cannot make the server allocate or wait on
/// an absurd length. Once failed, the decoder stays failed: the byte
/// stream is unframed garbage from there on and the connection must close.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = 64ull << 20)
      : max_payload_(max_payload) {}

  /// Buffers `size` received bytes. Fails on an oversized declared length.
  Status Feed(const char* data, size_t size);

  /// Moves the next complete frame into `out`; false when more bytes are
  /// needed (or the decoder has failed -- check last Feed's Status).
  bool Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  /// Validates the header at pos_ when present; sets failed_ on oversize.
  Status CheckHeader();

  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool failed_ = false;
};

/// Outgoing frame queue for a nonblocking socket: Push() encodes a frame;
/// Flush() writes as much as the socket accepts, surviving short writes.
/// On EAGAIN, Flush returns OK with *blocked = true and the remaining
/// bytes stay queued for the next writability event. EPIPE/ECONNRESET
/// surface as IoError (never SIGPIPE), which means the peer is gone and
/// pending frames should be dropped with the connection.
class FrameWriteQueue {
 public:
  void Push(MsgType type, const std::string& payload);

  /// Writes queued bytes to `fd` until empty or the socket would block.
  Status Flush(int fd, bool* blocked);

  bool empty() const { return pending_.empty(); }
  size_t pending_bytes() const { return pending_bytes_; }

 private:
  std::deque<std::string> pending_;  // encoded frames; front partially sent
  size_t front_offset_ = 0;          // sent prefix of pending_.front()
  size_t pending_bytes_ = 0;
};

}  // namespace reds::shard

#endif  // REDS_SHARD_WIRE_H_
