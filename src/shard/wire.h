// Length-prefixed message framing for the shard transport. One frame is
//   u32 payload length (little endian) | u8 message type | payload bytes
// written to / read from a plain file descriptor -- a socketpair between
// coordinator and in-process worker threads, a pipe to a forked worker, or
// a UNIX domain socket to a separate worker process all look the same
// here. Payloads are util/serialize byte streams, so everything that
// crosses the wire reuses the cache tier's (de)serializers and their
// bounds-checked parsing.
#ifndef REDS_SHARD_WIRE_H_
#define REDS_SHARD_WIRE_H_

#include <cstdint>
#include <string>

#include "util/serialize.h"
#include "util/status.h"

namespace reds::shard {

/// Shard protocol message types. The coordinator speaks first; every
/// request type has one reply type so the protocol is a strict sequence of
/// (broadcast, gather) rounds and cannot deadlock.
enum class MsgType : uint8_t {
  // Binning rounds.
  kSketchRequest = 1,   // -> worker: run the sketch pass over your shard
  kSketchReply = 2,     // <- worker: per-column ColumnSketch summaries
  kBins = 3,            // -> worker: global per-column bin upper bounds
  kCodingReply = 4,     // <- worker: per-column BinCodingStats
  kLayout = 5,          // -> worker: final per-column bin layout (remap)
  kLayoutAck = 6,       // <- worker: local permutation built

  // PRIM rounds.
  kPeelInit = 7,        // -> worker: build the local peel state
  kPeelInitReply = 8,   // <- worker: initial local per-bin aggregates
  kPeel = 9,            // -> worker: apply (dim, side, boundary bin)
  kPeelReply = 10,      // <- worker: full updated local aggregates

  // Distributed tree-fit rounds.
  kTreeStart = 11,      // -> worker: init node 0 = all local rows
  kTreeStartReply = 12, // <- worker: local root moments (sum, sum_sq, n)
  kTreeHist = 13,       // -> worker: histogram the given node's segment
  kTreeHistReply = 14,  // <- worker: per-feature local histograms
  kTreeSplit = 15,      // -> worker: partition a node into two children
  kTreeSplitReply = 16, // <- worker: both children's local moments
  kTreeFinish = 17,     // -> worker: drop tree-fit state

  // Sharded CV tuning.
  kTuneCells = 18,      // -> worker: evaluate these grid cells on D
  kTuneReply = 19,      // <- worker: per-cell CV losses

  // Fleet observability + teardown.
  kMetricsRequest = 20, // -> worker: snapshot your registry
  kMetricsReply = 21,   // <- worker: serialized RegistrySnapshot
  kShutdown = 22,       // -> worker: exit the serve loop
};

/// One parsed frame: the type byte plus the raw payload bytes.
struct Frame {
  MsgType type = MsgType::kShutdown;
  std::string payload;
};

/// Writes one frame to `fd`, looping over partial writes / EINTR.
Status WriteFrame(int fd, MsgType type, const std::string& payload);

inline Status WriteFrame(int fd, MsgType type, const util::ByteWriter& w) {
  return WriteFrame(fd, type, w.data());
}

/// Reads one frame from `fd` (blocking), looping over partial reads /
/// EINTR. Fails on EOF, short frames, or a declared payload above
/// `max_payload` (64 MiB default -- far above any real shard message, so a
/// corrupted length cannot trigger an absurd allocation).
Result<Frame> ReadFrame(int fd, size_t max_payload = 64ull << 20);

/// Reads one frame and checks its type.
Result<Frame> ExpectFrame(int fd, MsgType expected,
                          size_t max_payload = 64ull << 20);

}  // namespace reds::shard

#endif  // REDS_SHARD_WIRE_H_
