// Shard coordinator: drives N workers through the shard/wire protocol and
// runs one discovery over the union of their partitions. The coordinator
// never sees a row -- it folds per-worker quantile-sketch summaries into
// one global bin set (the same AssembleColumnBins code path BuildStreamed
// runs, so bins are identical to a single-process build in the exact-pack
// regime), re-sums per-worker per-bin aggregates after every PRIM peel
// (one round trip per applied peel), merges per-node histograms for the
// distributed tree fit, shards the CV tuning grid, and folds worker
// MetricsRegistry snapshots into one fleet view.
#ifndef REDS_SHARD_COORDINATOR_H_
#define REDS_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/binned_index.h"
#include "core/prim.h"
#include "ml/cart.h"
#include "ml/tuning.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace reds::shard {

/// The fleet-global bin layout: what the coordinator knows about each
/// column after the binning rounds (no codes, no rows).
struct GlobalBins {
  int num_rows = 0;
  int num_cols = 0;
  BinnedIndex::BuildKind kind = BinnedIndex::BuildKind::kExactPack;
  std::vector<int> num_bins;                    // [col]
  std::vector<std::vector<double>> bin_first;   // [col][bin]
  std::vector<std::vector<double>> bin_last;    // [col][bin]
};

class ShardCoordinator {
 public:
  /// Takes the worker-end file descriptors (one per worker, already
  /// connected to a serving RunShardWorker). Does not own or close them.
  ShardCoordinator(std::vector<int> worker_fds,
                   StreamedBuildOptions options = {});

  int num_workers() const { return static_cast<int>(fds_.size()); }

  /// Runs the binning rounds: sketch pass on every worker, fold the
  /// summaries in worker-index order, broadcast global bin upper bounds,
  /// fold the coding stats, assemble and broadcast the final layout.
  /// After this the fleet agrees on one global bin space.
  Status BuildGlobalBins();

  const GlobalBins& bins() const { return bins_; }

  /// Distributed PRIM over the sharded stream: the shared RunPeelingPhase
  /// loop drives a fleet peel state whose candidates are computed from the
  /// globally-summed per-bin aggregates (zero communication) and whose
  /// Apply is one broadcast + gather round. Requires integral {0,1}
  /// labels (REDS relabeled streams); bit-identical to RunPrimStreamed on
  /// the union in the exact-pack regime. Requires BuildGlobalBins.
  Result<PrimResult> RunPrim(const PrimConfig& config);

  /// Distributed depth-wise histogram CART over the sharded stream
  /// (labels as targets): per node, workers ship local per-feature
  /// histograms; the coordinator merges them (MergeHistogram), runs the
  /// shared ScanHistogramSplits scan, and broadcasts the chosen split.
  /// mtry and leaf-wise growth are not supported (the randomized /
  /// reordered paths are covered by tuning-cell sharding instead).
  /// Bit-identical to RegressionTree::Fit(kHistogram, depth-wise) for
  /// {0,1} labels in the exact-pack regime. Requires BuildGlobalBins.
  Result<ml::RegressionTree> FitTree(const ml::TreeConfig& config);

  /// Sharded CV grid tuning: D (small) is serialized to every worker,
  /// grid cells are dealt round-robin, per-cell losses come back, and the
  /// first-wins argmin in cell order reproduces TuneAndFit's pick exactly;
  /// the winning cell is refit locally. Returns the fitted model.
  Result<std::unique_ptr<ml::Metamodel>> TuneAndFitSharded(
      ml::MetamodelKind kind, const Dataset& d, uint64_t seed,
      const ml::TuningConfig& config);

  /// Folds every worker's RegistrySnapshot into `registry` (and counts the
  /// collection itself on the coordinator's own metric names).
  Status CollectMetrics(obs::MetricsRegistry* registry);

  /// Sends kShutdown to every worker. Idempotent.
  Status Shutdown();

 private:
  friend struct FleetPeelState;

  struct Moments {
    double sum = 0.0;
    double sum_sq = 0.0;
    int64_t count = 0;
  };

  Status Broadcast(uint8_t type, const std::string& payload);
  /// Gathers one reply of `type` from every worker, in worker-index order.
  Status Gather(uint8_t type, std::vector<std::string>* payloads);

  /// Parses one worker's aggregate reply into its slot and re-sums the
  /// global per-bin aggregates; used by peel init and every peel round.
  Status RefreshAggregates(const std::vector<std::string>& payloads);

  std::vector<int> fds_;
  StreamedBuildOptions options_;
  GlobalBins bins_;
  bool shut_down_ = false;

  // Fleet peel aggregates (summed over workers), in the global bin space.
  int64_t box_n_ = 0;
  std::vector<std::vector<int>> bin_count_;   // [dim][bin]
  std::vector<std::vector<double>> bin_pos_;  // [dim][bin]
};

}  // namespace reds::shard

#endif  // REDS_SHARD_COORDINATOR_H_
