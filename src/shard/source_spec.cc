#include "shard/source_spec.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace reds::shard {

void SourceSpec::SerializeTo(util::ByteWriter* out) const {
  out->U8(static_cast<uint8_t>(kind));
  out->I32(block_rows);
  out->U64(static_cast<uint64_t>(rows));
  out->I32(dims);
  out->I32(distinct);
  out->U64(seed);
  out->Str(path);
}

Result<SourceSpec> SourceSpec::DeserializeFrom(util::ByteReader* in) {
  SourceSpec spec;
  const uint8_t kind = in->U8();
  if (kind > 1) return Status::InvalidArgument("SourceSpec: bad kind");
  spec.kind = static_cast<Kind>(kind);
  spec.block_rows = in->I32();
  spec.rows = static_cast<int64_t>(in->U64());
  spec.dims = in->I32();
  spec.distinct = in->I32();
  spec.seed = in->U64();
  spec.path = in->Str();
  if (!in->ok()) return Status::InvalidArgument("SourceSpec: truncated");
  if (spec.block_rows <= 0) {
    return Status::InvalidArgument("SourceSpec: block_rows must be positive");
  }
  if (spec.kind == Kind::kSynthetic &&
      (spec.rows <= 0 || spec.dims <= 0 || spec.distinct < 2 ||
       spec.distinct > 256)) {
    return Status::InvalidArgument("SourceSpec: bad synthetic geometry");
  }
  return spec;
}

SyntheticBlockSource::SyntheticBlockSource(const SourceSpec& spec,
                                           int num_shards, int shard_index)
    : spec_(spec),
      num_shards_(num_shards),
      shard_index_(shard_index),
      next_block_(shard_index) {
  assert(spec.kind == SourceSpec::Kind::kSynthetic);
  assert(num_shards >= 1 && shard_index >= 0 && shard_index < num_shards);
}

int64_t SyntheticBlockSource::NumBlocks() const {
  return (spec_.rows + spec_.block_rows - 1) / spec_.block_rows;
}

int64_t SyntheticBlockSource::num_rows_hint() const {
  int64_t rows = 0;
  for (int64_t b = shard_index_; b < NumBlocks(); b += num_shards_) {
    rows += std::min<int64_t>(spec_.block_rows,
                              spec_.rows - b * spec_.block_rows);
  }
  return rows;
}

Status SyntheticBlockSource::Reset() {
  next_block_ = shard_index_;
  return Status::OK();
}

Result<RowBlock> SyntheticBlockSource::NextBlock(int max_rows) {
  if (max_rows != spec_.block_rows) {
    return Status::InvalidArgument(
        "SyntheticBlockSource: caller block size " + std::to_string(max_rows) +
        " != spec block_rows " + std::to_string(spec_.block_rows) +
        " (shard block numbering would drift)");
  }
  if (next_block_ >= NumBlocks()) return RowBlock{};
  const int64_t b = next_block_;
  next_block_ += num_shards_;

  const int rows = static_cast<int>(
      std::min<int64_t>(spec_.block_rows, spec_.rows - b * spec_.block_rows));
  const int m = spec_.dims;
  x_buf_.resize(static_cast<size_t>(rows) * static_cast<size_t>(m));
  y_buf_.resize(static_cast<size_t>(rows));

  // The whole block is a pure function of (seed, block index): every shard
  // that owns block b generates exactly the bytes a single-process run
  // sees for it.
  Rng rng(DeriveSeed(spec_.seed, static_cast<uint64_t>(b)));
  const double step = 1.0 / static_cast<double>(spec_.distinct - 1);
  for (int r = 0; r < rows; ++r) {
    double* row = x_buf_.data() + static_cast<size_t>(r) * m;
    for (int j = 0; j < m; ++j) {
      row[j] = step * static_cast<double>(rng.UniformInt(
                          static_cast<uint64_t>(spec_.distinct)));
    }
    // REDS-style planted box: high positive rate inside, low outside.
    const bool in_box = row[0] < 0.45 && (m < 2 || row[1] > 0.3);
    y_buf_[static_cast<size_t>(r)] =
        rng.Bernoulli(in_box ? 0.8 : 0.15) ? 1.0 : 0.0;
  }

  RowBlock block;
  block.x = la::ConstMatrixView(x_buf_.data(), rows, m);
  block.y = y_buf_.data();
  return block;
}

BlockStrideSource::BlockStrideSource(std::unique_ptr<DatasetSource> inner,
                                     int block_rows, int num_shards,
                                     int shard_index)
    : inner_(std::move(inner)),
      block_rows_(block_rows),
      num_shards_(num_shards),
      shard_index_(shard_index) {
  assert(num_shards >= 1 && shard_index >= 0 && shard_index < num_shards);
}

Status BlockStrideSource::Reset() {
  next_block_ = 0;
  return inner_->Reset();
}

Result<RowBlock> BlockStrideSource::NextBlock(int max_rows) {
  if (max_rows != block_rows_) {
    return Status::InvalidArgument(
        "BlockStrideSource: caller block size " + std::to_string(max_rows) +
        " != configured block_rows " + std::to_string(block_rows_));
  }
  while (true) {
    Result<RowBlock> block = inner_->NextBlock(block_rows_);
    if (!block.ok()) return block;
    if (block->empty()) return RowBlock{};
    const bool mine = next_block_ % num_shards_ == shard_index_;
    ++next_block_;
    if (!mine) continue;
    // The inner block aliases the inner source's buffers, which the next
    // pull overwrites -- but we return before pulling again, and RowBlock
    // contracts validity only until the next NextBlock call.
    return block;
  }
}

Result<std::unique_ptr<DatasetSource>> MakeSource(const SourceSpec& spec,
                                                  int num_shards,
                                                  int shard_index) {
  if (num_shards < 1 || shard_index < 0 || shard_index >= num_shards) {
    return Status::InvalidArgument("MakeSource: bad shard coordinates");
  }
  switch (spec.kind) {
    case SourceSpec::Kind::kSynthetic:
      return std::unique_ptr<DatasetSource>(
          std::make_unique<SyntheticBlockSource>(spec, num_shards,
                                                 shard_index));
    case SourceSpec::Kind::kCsv: {
      Result<std::unique_ptr<CsvFileSource>> csv =
          CsvFileSource::Open(spec.path);
      if (!csv.ok()) return csv.status();
      if (num_shards == 1) {
        return std::unique_ptr<DatasetSource>(std::move(*csv));
      }
      return std::unique_ptr<DatasetSource>(std::make_unique<BlockStrideSource>(
          std::move(*csv), spec.block_rows, num_shards, shard_index));
    }
  }
  return Status::InvalidArgument("MakeSource: unknown source kind");
}

}  // namespace reds::shard
