// Shard worker: one member of a sharded discovery fleet. A worker owns one
// partition of the data stream (a DatasetSource yielding only its blocks),
// speaks the shard/wire protocol over a single file descriptor, and holds
// the partition's quantized state -- local codes against the global bins,
// the local label vector, per-dimension permutations and per-global-bin
// aggregates -- so the coordinator only ever sees O(dims x bins) summaries,
// never rows. Runs identically as an in-process thread (socketpair), a
// forked child (pipe), or a separate process (UNIX socket): the fd is the
// whole interface.
#ifndef REDS_SHARD_WORKER_H_
#define REDS_SHARD_WORKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/dataset_source.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace reds::shard {

/// Serves the shard protocol on `fd` over `source`'s rows until the
/// coordinator sends kShutdown (returns OK) or the transport fails. The
/// worker's own MetricsRegistry (counters and phase timers) is shipped to
/// the coordinator on kMetricsRequest, so fleet metrics fold into one dump.
Status RunShardWorker(int fd, DatasetSource* source);

namespace internal {

/// The worker state machine, exposed for tests.
class ShardWorker {
 public:
  ShardWorker(int fd, DatasetSource* source);

  Status Serve();

 private:
  Status HandleSketch(const std::string& payload);
  Status HandleBins(const std::string& payload);
  Status HandleLayout(const std::string& payload);
  Status HandlePeelInit();
  Status HandlePeel(const std::string& payload);
  Status HandleTreeStart();
  Status HandleTreeHist(const std::string& payload);
  Status HandleTreeSplit(const std::string& payload);
  Status HandleMetrics();

  /// Serializes every dimension's in-box per-bin aggregates (the reply
  /// body of kPeelInitReply and kPeelReply).
  std::string AggregatesPayload() const;

  void RemoveRow(int r);

  int fd_;
  DatasetSource* source_;
  obs::MetricsRegistry metrics_;

  // Streamed-build configuration, received with kSketchRequest.
  int block_rows_ = 0;
  int cap_ = 0;
  double eps_ = 0.0;

  // Local partition state.
  int m_ = 0;
  int n_ = 0;                                 // local rows
  std::vector<double> y_;                     // [local row]
  std::vector<std::vector<uint8_t>> codes_;   // [dim][local row], global bins
  std::vector<int> num_bins_;                 // [dim] global live bins
  std::vector<std::vector<int>> perm_;        // [dim] rows by (code, row id)
  std::vector<std::vector<int>> begins_;      // [dim][bin] local rank offsets

  // PRIM peel state over the local partition (global bin space).
  std::vector<uint8_t> in_box_;
  int n_box_ = 0;
  std::vector<int> lo_rank_;
  std::vector<int> hi_rank_;
  std::vector<std::vector<int>> bin_count_;
  std::vector<std::vector<double>> bin_pos_;

  // Distributed tree fit: segment id -> local member rows.
  std::map<int, std::vector<int>> segments_;
};

}  // namespace internal

}  // namespace reds::shard

#endif  // REDS_SHARD_WORKER_H_
