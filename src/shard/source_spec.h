// Shard-aware dataset sources. A SourceSpec is a small serializable
// description of where a shard's data comes from -- a deterministic
// synthetic generator or a CSV file -- that a coordinator can hand to a
// worker in another process. MakeSource(spec, num_shards, shard_index)
// instantiates the worker's partition: blocks of `block_rows` rows are
// numbered from 0 in source order and worker w owns blocks with
// block_index % num_shards == w, so the union over workers is exactly the
// single-process block sequence and no two workers touch the same row.
//
// SyntheticBlockSource is the scaling workhorse: each block is generated
// from its own rng seeded DeriveSeed(seed, block_index), so a worker
// generates only the 1/W share of L it owns -- generation cost shards
// along with sketching and coding, which is what makes the 4-worker
// speedup near-linear instead of bounded by a serial generate phase.
// Columns take `distinct` evenly spaced grid values in [0, 1] (so the
// streamed build stays in the exact-pack regime and sharded discovery is
// bit-identical to single-process) and labels are {0,1} Bernoulli draws
// whose rate depends on a planted box, REDS-style.
#ifndef REDS_SHARD_SOURCE_SPEC_H_
#define REDS_SHARD_SOURCE_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset_source.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds::shard {

/// Serializable description of a shardable dataset source.
struct SourceSpec {
  enum class Kind : uint8_t { kSynthetic = 0, kCsv = 1 };

  Kind kind = Kind::kSynthetic;
  int block_rows = 8192;  // must match the streamed build's block size

  // kSynthetic fields.
  int64_t rows = 0;
  int dims = 0;
  int distinct = 48;   // grid values per column (<= 256 keeps exact-pack)
  uint64_t seed = 0;

  // kCsv fields.
  std::string path;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<SourceSpec> DeserializeFrom(util::ByteReader* in);
};

/// Deterministic block generator: block b of `block_rows` rows is produced
/// by Rng(DeriveSeed(seed, b)) regardless of which shard asks, and the
/// source yields only blocks owned by `shard_index` (stride partitioning).
/// num_shards = 1, shard_index = 0 is the full single-process stream.
class SyntheticBlockSource : public DatasetSource {
 public:
  SyntheticBlockSource(const SourceSpec& spec, int num_shards,
                       int shard_index);

  int num_cols() const override { return spec_.dims; }
  int64_t num_rows_hint() const override;
  Status Reset() override;
  Result<RowBlock> NextBlock(int max_rows) override;

 private:
  int64_t NumBlocks() const;

  SourceSpec spec_;
  int num_shards_;
  int shard_index_;
  int64_t next_block_;  // next block index owned by this shard
  std::vector<double> x_buf_;
  std::vector<double> y_buf_;
};

/// Stride-partitions any DatasetSource: pulls fixed `block_rows` blocks
/// from the wrapped source and yields only those owned by `shard_index`.
/// Unlike SyntheticBlockSource the skipped blocks are still read (the
/// inner source is sequential), so this is correctness sharding for
/// generic sources, not generation sharding.
class BlockStrideSource : public DatasetSource {
 public:
  BlockStrideSource(std::unique_ptr<DatasetSource> inner, int block_rows,
                    int num_shards, int shard_index);

  int num_cols() const override { return inner_->num_cols(); }
  int64_t num_rows_hint() const override { return -1; }
  Status Reset() override;
  Result<RowBlock> NextBlock(int max_rows) override;

 private:
  std::unique_ptr<DatasetSource> inner_;
  int block_rows_;
  int num_shards_;
  int shard_index_;
  int64_t next_block_ = 0;  // next inner block index to pull
  std::vector<double> x_buf_;
  std::vector<double> y_buf_;
};

/// Instantiates the spec's shard `shard_index` of `num_shards`.
Result<std::unique_ptr<DatasetSource>> MakeSource(const SourceSpec& spec,
                                                  int num_shards,
                                                  int shard_index);

}  // namespace reds::shard

#endif  // REDS_SHARD_SOURCE_SPEC_H_
