#include "shard/worker.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/binned_index.h"
#include "core/dataset.h"
#include "ml/histogram.h"
#include "ml/tuning.h"
#include "shard/wire.h"
#include "util/serialize.h"

namespace reds::shard {

namespace internal {

ShardWorker::ShardWorker(int fd, DatasetSource* source)
    : fd_(fd), source_(source) {}

Status ShardWorker::Serve() {
  for (;;) {
    Result<Frame> frame = ReadFrame(fd_);
    if (!frame.ok()) return frame.status();
    Status s = Status::OK();
    switch (frame->type) {
      case MsgType::kSketchRequest:
        s = HandleSketch(frame->payload);
        break;
      case MsgType::kBins:
        s = HandleBins(frame->payload);
        break;
      case MsgType::kLayout:
        s = HandleLayout(frame->payload);
        break;
      case MsgType::kPeelInit:
        s = HandlePeelInit();
        break;
      case MsgType::kPeel:
        s = HandlePeel(frame->payload);
        break;
      case MsgType::kTreeStart:
        s = HandleTreeStart();
        break;
      case MsgType::kTreeHist:
        s = HandleTreeHist(frame->payload);
        break;
      case MsgType::kTreeSplit:
        s = HandleTreeSplit(frame->payload);
        break;
      case MsgType::kTreeFinish:
        segments_.clear();
        break;
      case MsgType::kTuneCells: {
        util::ByteReader in(frame->payload);
        const auto kind = static_cast<ml::MetamodelKind>(in.U8());
        const uint64_t seed = in.U64();
        ml::TuningConfig config;
        config.budget = static_cast<ml::TuningBudget>(in.U8());
        config.folds = in.I32();
        config.backend = static_cast<ml::SplitBackend>(in.U8());
        config.growth = static_cast<ml::GrowthPolicy>(in.U8());
        config.max_leaves = in.I32();
        const int num_cols = in.I32();
        std::vector<double> x = in.VecF64();
        std::vector<double> y = in.VecF64();
        std::vector<int> cells = in.VecI32();
        if (!in.ok() || num_cols <= 0) {
          s = Status::InvalidArgument("shard worker: bad kTuneCells payload");
          break;
        }
        const Dataset d(num_cols, std::move(x), std::move(y));
        util::ByteWriter out;
        out.U64(cells.size());
        for (int cell : cells) {
          metrics_.counter("shard.worker.tune_cells")->Add();
          out.I32(cell);
          out.F64(ml::TuningCellLoss(kind, cell, d, seed, config));
        }
        s = WriteFrame(fd_, MsgType::kTuneReply, out);
        break;
      }
      case MsgType::kMetricsRequest:
        s = HandleMetrics();
        break;
      case MsgType::kShutdown:
        return Status::OK();
      default:
        s = Status::InvalidArgument(
            "shard worker: unexpected message type " +
            std::to_string(static_cast<int>(frame->type)));
        break;
    }
    if (!s.ok()) return s;
  }
}

Status ShardWorker::HandleSketch(const std::string& payload) {
  util::ByteReader in(payload);
  block_rows_ = in.I32();
  cap_ = in.I32();
  eps_ = in.F64();
  if (!in.ok() || block_rows_ < 1 || cap_ < 1 || cap_ > 256 ||
      !(eps_ > 0.0) || eps_ >= 0.5) {
    return Status::InvalidArgument("shard worker: bad kSketchRequest payload");
  }
  m_ = source_->num_cols();
  if (m_ <= 0) {
    return Status::InvalidArgument("shard worker: source has no columns");
  }

  Status reset = source_->Reset();
  if (!reset.ok()) return reset;

  std::vector<ColumnSketch> acc(static_cast<size_t>(m_), ColumnSketch(eps_));
  y_.clear();
  int64_t n = 0;
  obs::ScopedTimer timer(metrics_.histogram("shard.worker.sketch_ns"));
  for (;;) {
    Result<RowBlock> block = source_->NextBlock(block_rows_);
    if (!block.ok()) return block.status();
    if (block->empty()) break;
    const int rows = block->num_rows();
    n += rows;
    metrics_.counter("shard.worker.blocks")->Add();
    metrics_.counter("shard.worker.rows")->Add(static_cast<uint64_t>(rows));
    y_.insert(y_.end(), block->y, block->y + rows);
    // Per-block local sketches folded in block order -- the serial
    // BuildStreamed discipline, so a 1-worker fleet's summary state equals
    // the single-process build's even in the sketch-overflow regime.
    const double* x = block->x.data();
    std::vector<ColumnSketch> local(static_cast<size_t>(m_),
                                    ColumnSketch(eps_));
    for (int j = 0; j < m_; ++j) {
      ColumnSketch& col = local[static_cast<size_t>(j)];
      for (int r = 0; r < rows; ++r) {
        col.AddValue(x[static_cast<size_t>(r) * m_ + j], cap_);
      }
    }
    for (int j = 0; j < m_; ++j) {
      acc[static_cast<size_t>(j)].MergeFrom(local[static_cast<size_t>(j)],
                                            cap_);
    }
  }
  if (n > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("shard worker: shard exceeds 2^31 rows");
  }
  n_ = static_cast<int>(n);

  util::ByteWriter out;
  out.U64(static_cast<uint64_t>(n_));
  out.I32(m_);
  for (const ColumnSketch& cs : acc) cs.SerializeTo(&out);
  return WriteFrame(fd_, MsgType::kSketchReply, out);
}

Status ShardWorker::HandleBins(const std::string& payload) {
  util::ByteReader in(payload);
  const int m = in.I32();
  if (!in.ok() || m != m_) {
    return Status::InvalidArgument("shard worker: kBins dims mismatch");
  }
  std::vector<std::vector<double>> upper(static_cast<size_t>(m_));
  for (int j = 0; j < m_; ++j) {
    upper[static_cast<size_t>(j)] = in.VecF64();
    if (!in.ok() || upper[static_cast<size_t>(j)].empty()) {
      return Status::InvalidArgument("shard worker: bad kBins payload");
    }
  }

  Status reset = source_->Reset();
  if (!reset.ok()) return reset;

  codes_.assign(static_cast<size_t>(m_), {});
  std::vector<BinCodingStats> stats(static_cast<size_t>(m_));
  for (int j = 0; j < m_; ++j) {
    codes_[static_cast<size_t>(j)].reserve(static_cast<size_t>(n_));
    stats[static_cast<size_t>(j)].Reset(upper[static_cast<size_t>(j)].size());
  }

  int64_t seen = 0;
  obs::ScopedTimer timer(metrics_.histogram("shard.worker.code_ns"));
  for (;;) {
    Result<RowBlock> block = source_->NextBlock(block_rows_);
    if (!block.ok()) return block.status();
    if (block->empty()) break;
    const int rows = block->num_rows();
    seen += rows;
    const double* x = block->x.data();
    for (int j = 0; j < m_; ++j) {
      const std::vector<double>& ub = upper[static_cast<size_t>(j)];
      std::vector<uint8_t>& codes = codes_[static_cast<size_t>(j)];
      BinCodingStats& cs = stats[static_cast<size_t>(j)];
      for (int r = 0; r < rows; ++r) {
        const double v = x[static_cast<size_t>(r) * m_ + j];
        const uint8_t b = StreamedCodeOf(ub, v);
        codes.push_back(b);
        cs.Observe(b, v);
      }
    }
  }
  if (seen != n_) {
    return Status::FailedPrecondition(
        "shard worker: source yielded a different row count on pass 2");
  }

  util::ByteWriter out;
  out.U64(static_cast<uint64_t>(n_));
  for (int j = 0; j < m_; ++j) {
    const BinCodingStats& cs = stats[static_cast<size_t>(j)];
    out.VecI32(cs.count);
    out.VecF64(cs.vmin);
    out.VecF64(cs.vmax);
  }
  return WriteFrame(fd_, MsgType::kCodingReply, out);
}

Status ShardWorker::HandleLayout(const std::string& payload) {
  util::ByteReader in(payload);
  num_bins_.assign(static_cast<size_t>(m_), 0);
  perm_.assign(static_cast<size_t>(m_), {});
  begins_.assign(static_cast<size_t>(m_), {});
  for (int j = 0; j < m_; ++j) {
    const int live = in.I32();
    const std::vector<uint8_t> remap = in.VecU8();
    if (!in.ok() || live < 1 || live > 256) {
      return Status::InvalidArgument("shard worker: bad kLayout payload");
    }
    num_bins_[static_cast<size_t>(j)] = live;
    std::vector<uint8_t>& codes = codes_[static_cast<size_t>(j)];
    if (live != static_cast<int>(remap.size())) {
      // A raw bin that is empty globally is empty locally too, so every
      // local code has a valid remap slot.
      for (uint8_t& c : codes) c = remap[c];
    }
    // Local permutation over the GLOBAL bin space: stable counting sort by
    // (global code, local row id), with local rank offsets per global bin.
    // This is exactly BinnedIndex::BuildOwnPermutation restricted to this
    // shard's rows; global bins with no local rows get empty rank spans.
    std::vector<int>& begins = begins_[static_cast<size_t>(j)];
    begins.assign(static_cast<size_t>(live) + 1, 0);
    for (uint8_t c : codes) ++begins[static_cast<size_t>(c) + 1];
    for (int b = 0; b < live; ++b) {
      begins[static_cast<size_t>(b) + 1] += begins[static_cast<size_t>(b)];
    }
    std::vector<int>& perm = perm_[static_cast<size_t>(j)];
    perm.resize(static_cast<size_t>(n_));
    std::vector<int> cursor(begins.begin(), begins.end() - 1);
    for (int r = 0; r < n_; ++r) {
      perm[static_cast<size_t>(
          cursor[static_cast<size_t>(codes[static_cast<size_t>(r)])]++)] = r;
    }
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("shard worker: trailing kLayout bytes");
  }
  return WriteFrame(fd_, MsgType::kLayoutAck, std::string());
}

Status ShardWorker::HandlePeelInit() {
  in_box_.assign(static_cast<size_t>(n_), 1);
  n_box_ = n_;
  lo_rank_.assign(static_cast<size_t>(m_), 0);
  hi_rank_.assign(static_cast<size_t>(m_), n_);
  bin_count_.assign(static_cast<size_t>(m_), {});
  bin_pos_.assign(static_cast<size_t>(m_), {});
  for (int j = 0; j < m_; ++j) {
    const int live = num_bins_[static_cast<size_t>(j)];
    std::vector<int>& counts = bin_count_[static_cast<size_t>(j)];
    std::vector<double>& pos = bin_pos_[static_cast<size_t>(j)];
    counts.assign(static_cast<size_t>(live), 0);
    pos.assign(static_cast<size_t>(live), 0.0);
    const std::vector<int>& begins = begins_[static_cast<size_t>(j)];
    const std::vector<int>& perm = perm_[static_cast<size_t>(j)];
    for (int b = 0; b < live; ++b) {
      const int begin = begins[static_cast<size_t>(b)];
      const int end = begins[static_cast<size_t>(b) + 1];
      counts[static_cast<size_t>(b)] = end - begin;
      for (int rank = begin; rank < end; ++rank) {
        pos[static_cast<size_t>(b)] +=
            y_[static_cast<size_t>(perm[static_cast<size_t>(rank)])];
      }
    }
  }
  // Lead with an integral-labels flag: the coordinator's distributed
  // candidate math is exact only for {0,1} labels, and only the workers
  // ever see y.
  bool integral = true;
  for (double y : y_) {
    if (y != 0.0 && y != 1.0) {
      integral = false;
      break;
    }
  }
  std::string reply(1, integral ? '\x01' : '\x00');
  reply += AggregatesPayload();
  return WriteFrame(fd_, MsgType::kPeelInitReply, reply);
}

std::string ShardWorker::AggregatesPayload() const {
  util::ByteWriter out;
  out.U64(static_cast<uint64_t>(n_box_));
  for (int j = 0; j < m_; ++j) {
    out.VecI32(bin_count_[static_cast<size_t>(j)]);
    out.VecF64(bin_pos_[static_cast<size_t>(j)]);
  }
  return out.data();
}

void ShardWorker::RemoveRow(int r) {
  if (!in_box_[static_cast<size_t>(r)]) return;
  in_box_[static_cast<size_t>(r)] = 0;
  --n_box_;
  const double y = y_[static_cast<size_t>(r)];
  for (int j = 0; j < m_; ++j) {
    const uint8_t b = codes_[static_cast<size_t>(j)][static_cast<size_t>(r)];
    --bin_count_[static_cast<size_t>(j)][static_cast<size_t>(b)];
    bin_pos_[static_cast<size_t>(j)][static_cast<size_t>(b)] -= y;
  }
}

Status ShardWorker::HandlePeel(const std::string& payload) {
  util::ByteReader in(payload);
  const int dim = in.I32();
  const bool low = in.U8() != 0;
  const int bin = in.I32();
  if (!in.ok() || dim < 0 || dim >= m_ || bin < 0 ||
      bin >= num_bins_[static_cast<size_t>(dim)]) {
    return Status::InvalidArgument("shard worker: bad kPeel payload");
  }
  metrics_.counter("shard.worker.peels")->Add();

  // Mirror of CodePeelState::Apply on the local slice of each global bin:
  // the global peel removes every in-box row below (or above) the boundary
  // bin, and the local permutation windows tile exactly those rows.
  const std::vector<int>& perm = perm_[static_cast<size_t>(dim)];
  const std::vector<int>& begins = begins_[static_cast<size_t>(dim)];
  if (low) {
    const int new_lo = begins[static_cast<size_t>(bin)];
    for (int rank = lo_rank_[static_cast<size_t>(dim)]; rank < new_lo;
         ++rank) {
      RemoveRow(perm[static_cast<size_t>(rank)]);
    }
    lo_rank_[static_cast<size_t>(dim)] = new_lo;
  } else {
    const int new_hi = begins[static_cast<size_t>(bin) + 1];
    for (int rank = new_hi; rank < hi_rank_[static_cast<size_t>(dim)];
         ++rank) {
      RemoveRow(perm[static_cast<size_t>(rank)]);
    }
    hi_rank_[static_cast<size_t>(dim)] = new_hi;
  }
  for (int j = 0; j < m_; ++j) {
    const std::vector<int>& p = perm_[static_cast<size_t>(j)];
    int& lo = lo_rank_[static_cast<size_t>(j)];
    int& hi = hi_rank_[static_cast<size_t>(j)];
    while (lo < hi &&
           !in_box_[static_cast<size_t>(p[static_cast<size_t>(lo)])]) {
      ++lo;
    }
    while (hi > lo &&
           !in_box_[static_cast<size_t>(p[static_cast<size_t>(hi - 1)])]) {
      --hi;
    }
  }
  return WriteFrame(fd_, MsgType::kPeelReply, AggregatesPayload());
}

Status ShardWorker::HandleTreeStart() {
  segments_.clear();
  std::vector<int>& root = segments_[0];
  root.resize(static_cast<size_t>(n_));
  for (int r = 0; r < n_; ++r) root[static_cast<size_t>(r)] = r;
  double sum = 0.0, sum_sq = 0.0;
  for (double y : y_) {
    sum += y;
    sum_sq += y * y;
  }
  util::ByteWriter out;
  out.F64(sum);
  out.F64(sum_sq);
  out.U64(static_cast<uint64_t>(n_));
  return WriteFrame(fd_, MsgType::kTreeStartReply, out);
}

Status ShardWorker::HandleTreeHist(const std::string& payload) {
  util::ByteReader in(payload);
  const int seg = in.I32();
  const auto it = segments_.find(seg);
  if (!in.ok() || it == segments_.end()) {
    return Status::InvalidArgument("shard worker: unknown tree segment");
  }
  const std::vector<int>& rows = it->second;
  util::ByteWriter out;
  std::vector<ml::HistBin> bins;
  for (int j = 0; j < m_; ++j) {
    const int live = num_bins_[static_cast<size_t>(j)];
    bins.assign(static_cast<size_t>(live), ml::HistBin{});
    ml::AccumulateHistogram(codes_[static_cast<size_t>(j)].data(),
                            rows.data(), static_cast<int>(rows.size()),
                            y_.data(), bins.data());
    ml::SerializeHistogram(bins.data(), live, &out);
  }
  return WriteFrame(fd_, MsgType::kTreeHistReply, out);
}

Status ShardWorker::HandleTreeSplit(const std::string& payload) {
  util::ByteReader in(payload);
  const int seg = in.I32();
  const int left_seg = in.I32();
  const int right_seg = in.I32();
  const int feature = in.I32();
  const int boundary_bin = in.I32();
  auto it = segments_.find(seg);
  if (!in.ok() || it == segments_.end() || feature < 0 || feature >= m_) {
    return Status::InvalidArgument("shard worker: bad kTreeSplit payload");
  }
  const std::vector<uint8_t>& codes = codes_[static_cast<size_t>(feature)];
  std::vector<int> left, right;
  double sum_l = 0.0, sq_l = 0.0, sum_r = 0.0, sq_r = 0.0;
  for (int r : it->second) {
    const double y = y_[static_cast<size_t>(r)];
    // Partition by bin code against the global boundary bin. In the
    // exact-pack regime (one distinct value per bin) this is exactly the
    // single-process partition by value against the midpoint threshold.
    if (codes[static_cast<size_t>(r)] <= boundary_bin) {
      left.push_back(r);
      sum_l += y;
      sq_l += y * y;
    } else {
      right.push_back(r);
      sum_r += y;
      sq_r += y * y;
    }
  }
  segments_.erase(it);
  util::ByteWriter out;
  out.F64(sum_l);
  out.F64(sq_l);
  out.U64(static_cast<uint64_t>(left.size()));
  out.F64(sum_r);
  out.F64(sq_r);
  out.U64(static_cast<uint64_t>(right.size()));
  segments_[left_seg] = std::move(left);
  segments_[right_seg] = std::move(right);
  return WriteFrame(fd_, MsgType::kTreeSplitReply, out);
}

Status ShardWorker::HandleMetrics() {
  util::ByteWriter out;
  metrics_.TakeSnapshot().SerializeTo(&out);
  return WriteFrame(fd_, MsgType::kMetricsReply, out);
}

}  // namespace internal

Status RunShardWorker(int fd, DatasetSource* source) {
  internal::ShardWorker worker(fd, source);
  return worker.Serve();
}

}  // namespace reds::shard
