#include "ml/serialize.h"

#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

namespace reds::ml {

void SerializeMetamodel(const Metamodel& model, MetamodelKind kind,
                        util::ByteWriter* out) {
  out->U8(static_cast<uint8_t>(kind));
  switch (kind) {
    case MetamodelKind::kRandomForest:
      dynamic_cast<const RandomForest&>(model).SerializeTo(out);
      return;
    case MetamodelKind::kGbt:
      dynamic_cast<const GradientBoostedTrees&>(model).SerializeTo(out);
      return;
    case MetamodelKind::kSvm:
      dynamic_cast<const SvmRbf&>(model).SerializeTo(out);
      return;
  }
}

Result<std::shared_ptr<const Metamodel>> DeserializeMetamodel(
    util::ByteReader* in, MetamodelKind expected_kind) {
  const uint8_t tag = in->U8();
  if (!in->ok() || tag != static_cast<uint8_t>(expected_kind)) {
    return Status::InvalidArgument("corrupt metamodel: kind tag");
  }
  switch (expected_kind) {
    case MetamodelKind::kRandomForest: {
      auto model = std::make_shared<RandomForest>();
      const Status s = model->DeserializeFrom(in);
      if (!s.ok()) return s;
      return std::shared_ptr<const Metamodel>(std::move(model));
    }
    case MetamodelKind::kGbt: {
      auto model = std::make_shared<GradientBoostedTrees>();
      const Status s = model->DeserializeFrom(in);
      if (!s.ok()) return s;
      return std::shared_ptr<const Metamodel>(std::move(model));
    }
    case MetamodelKind::kSvm: {
      auto model = std::make_shared<SvmRbf>();
      const Status s = model->DeserializeFrom(in);
      if (!s.ok()) return s;
      return std::shared_ptr<const Metamodel>(std::move(model));
    }
  }
  return Status::InvalidArgument("corrupt metamodel: unknown kind");
}

}  // namespace reds::ml
