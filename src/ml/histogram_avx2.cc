// AVX2 histogram kernels, compiled with -mavx2 (per-file flag in
// CMakeLists) and reached only through the dispatchers in histogram.cc
// when ActiveSimdLevel() == kAvx2.
//
// Bit-identity contract: every bin update happens in row order with plain
// IEEE adds. The only vector arithmetic is the fused 128-bit (g,h) bin
// update -- _mm_add_pd adds each lane independently, so bins[c].g += g and
// bins[c].h += h land exactly as in the scalar loop. No FMA anywhere.
//
// What actually buys the speed here (measured on the target machines, in
// descending order of impact):
//   1. The packed pair layout (gh[2*id], gh[2*id+1]): one random cache
//      line per row instead of two.
//   2. Software prefetch of the gradient and code streams at distance 32
//      rows: the ids array is sequential, so future ids are cheap to read
//      ahead and the random gradient-line misses overlap. Every one of the
//      four upcoming ids gets its own gradient-line prefetch -- shuffled
//      ids land on four distinct cache lines, so covering only half of
//      them (measured) gives up a third of the kernel's speedup.
//   3. The fused 16-byte bin read-modify-write: halves load/store-port
//      traffic on the bin side.
// Plain AVX2 gathers were measured at ~1.0x against the unrolled scalar
// loop on this access pattern and are deliberately absent.
#include "ml/histogram.h"

#if defined(REDS_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace reds::ml {

namespace {
constexpr int kPrefetchDistance = 32;
}  // namespace

void AccumulateHistogramAvx2(const uint8_t* codes, const int* ids, int n,
                             const double* g, HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + kPrefetchDistance + 4 <= n) {
      const int q0 = ids[i + kPrefetchDistance];
      const int q1 = ids[i + kPrefetchDistance + 1];
      const int q2 = ids[i + kPrefetchDistance + 2];
      const int q3 = ids[i + kPrefetchDistance + 3];
      _mm_prefetch(reinterpret_cast<const char*>(g + q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(g + q1), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(g + q2), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(g + q3), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q2), _MM_HINT_T0);
    }
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const double g0 = g[id0], g1 = g[id1], g2 = g[id2], g3 = g[id3];
    bins[c0].g += g0;
    ++bins[c0].count;
    bins[c1].g += g1;
    ++bins[c1].count;
    bins[c2].g += g2;
    ++bins[c2].count;
    bins[c3].g += g3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    ++bin.count;
  }
}

void AccumulateHistogramAvx2(const uint8_t* codes, const int* ids, int n,
                             const double* g, const double* h,
                             HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + kPrefetchDistance + 4 <= n) {
      const int q0 = ids[i + kPrefetchDistance];
      const int q1 = ids[i + kPrefetchDistance + 1];
      const int q2 = ids[i + kPrefetchDistance + 2];
      const int q3 = ids[i + kPrefetchDistance + 3];
      _mm_prefetch(reinterpret_cast<const char*>(g + q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(h + q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(g + q1), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(h + q1), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(g + q2), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(h + q2), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(g + q3), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(h + q3), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q2), _MM_HINT_T0);
    }
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const __m128d p0 = _mm_set_pd(h[id0], g[id0]);
    const __m128d p1 = _mm_set_pd(h[id1], g[id1]);
    const __m128d p2 = _mm_set_pd(h[id2], g[id2]);
    const __m128d p3 = _mm_set_pd(h[id3], g[id3]);
    // Fused (g,h) update: one 16-byte RMW per bin, lanes independent so
    // the sums match the scalar loop bit-for-bit. Updates in row order.
    double* b0 = &bins[c0].g;
    _mm_storeu_pd(b0, _mm_add_pd(_mm_loadu_pd(b0), p0));
    ++bins[c0].count;
    double* b1 = &bins[c1].g;
    _mm_storeu_pd(b1, _mm_add_pd(_mm_loadu_pd(b1), p1));
    ++bins[c1].count;
    double* b2 = &bins[c2].g;
    _mm_storeu_pd(b2, _mm_add_pd(_mm_loadu_pd(b2), p2));
    ++bins[c2].count;
    double* b3 = &bins[c3].g;
    _mm_storeu_pd(b3, _mm_add_pd(_mm_loadu_pd(b3), p3));
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    bin.h += h[id];
    ++bin.count;
  }
}

void AccumulateHistogramPairsAvx2(const uint8_t* codes, const int* ids, int n,
                                  const double* gh, HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + kPrefetchDistance + 4 <= n) {
      const int q0 = ids[i + kPrefetchDistance];
      const int q1 = ids[i + kPrefetchDistance + 1];
      const int q2 = ids[i + kPrefetchDistance + 2];
      const int q3 = ids[i + kPrefetchDistance + 3];
      _mm_prefetch(reinterpret_cast<const char*>(gh + 2 * q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(gh + 2 * q1), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(gh + 2 * q2), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(gh + 2 * q3), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q2), _MM_HINT_T0);
    }
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const __m128d p0 = _mm_loadu_pd(gh + 2 * id0);
    const __m128d p1 = _mm_loadu_pd(gh + 2 * id1);
    const __m128d p2v = _mm_loadu_pd(gh + 2 * id2);
    const __m128d p3 = _mm_loadu_pd(gh + 2 * id3);
    double* b0 = &bins[c0].g;
    _mm_storeu_pd(b0, _mm_add_pd(_mm_loadu_pd(b0), p0));
    ++bins[c0].count;
    double* b1 = &bins[c1].g;
    _mm_storeu_pd(b1, _mm_add_pd(_mm_loadu_pd(b1), p1));
    ++bins[c1].count;
    double* b2 = &bins[c2].g;
    _mm_storeu_pd(b2, _mm_add_pd(_mm_loadu_pd(b2), p2v));
    ++bins[c2].count;
    double* b3 = &bins[c3].g;
    _mm_storeu_pd(b3, _mm_add_pd(_mm_loadu_pd(b3), p3));
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += gh[2 * id];
    bin.h += gh[2 * id + 1];
    ++bin.count;
  }
}

void AccumulateHistogramQ16Avx2(const uint8_t* codes, const int* ids, int n,
                                const int16_t* gh16, HistBinQ16* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + kPrefetchDistance + 4 <= n) {
      const int q0 = ids[i + kPrefetchDistance];
      const int q1 = ids[i + kPrefetchDistance + 1];
      const int q2 = ids[i + kPrefetchDistance + 2];
      const int q3 = ids[i + kPrefetchDistance + 3];
      _mm_prefetch(reinterpret_cast<const char*>(gh16 + 2 * q0),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(gh16 + 2 * q1),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(gh16 + 2 * q2),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(gh16 + 2 * q3),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q0), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(codes + q2), _MM_HINT_T0);
    }
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const int16_t g0 = gh16[2 * id0], h0 = gh16[2 * id0 + 1];
    const int16_t g1 = gh16[2 * id1], h1 = gh16[2 * id1 + 1];
    const int16_t g2 = gh16[2 * id2], h2 = gh16[2 * id2 + 1];
    const int16_t g3 = gh16[2 * id3], h3 = gh16[2 * id3 + 1];
    bins[c0].g += g0;
    bins[c0].h += h0;
    ++bins[c0].count;
    bins[c1].g += g1;
    bins[c1].h += h1;
    ++bins[c1].count;
    bins[c2].g += g2;
    bins[c2].h += h2;
    ++bins[c2].count;
    bins[c3].g += g3;
    bins[c3].h += h3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBinQ16& bin = bins[codes[id]];
    bin.g += gh16[2 * id];
    bin.h += gh16[2 * id + 1];
    ++bin.count;
  }
}

}  // namespace reds::ml

#endif  // REDS_HAVE_AVX2 && __AVX2__
