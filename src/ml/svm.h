// Support vector machine with RBF kernel, trained by sequential minimal
// optimization (SMO). Backs the "s" metamodel variant ("RPs"). Probabilities
// are a sigmoid of the decision value, preserving the paper's bnd=0 decision
// threshold (PredictProb > 0.5 <=> decision > 0).
#ifndef REDS_ML_SVM_H_
#define REDS_ML_SVM_H_

#include <vector>

#include "ml/model.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds::ml {

struct SvmConfig {
  double c = 1.0;        // box constraint
  double gamma = -1.0;   // RBF width; <= 0: median-distance heuristic
  double tol = 1e-3;     // KKT violation tolerance
  int max_passes = 10;   // SMO sweeps without progress before stopping
  int max_iters = 20000; // hard cap on full sweeps
};

class SvmRbf : public Metamodel {
 public:
  explicit SvmRbf(SvmConfig config = {}) : config_(config) {}

  void Fit(const Dataset& d, uint64_t seed) override;
  double PredictProb(const double* x) const override;
  int num_features() const override { return num_features_; }

  /// Signed decision value sum_i alpha_i y_i K(x_i, x) + b.
  double Decision(const double* x) const;

  int num_support_vectors() const { return static_cast<int>(sv_x_.size()); }
  double gamma() const { return gamma_; }

  /// Appends the fitted machine (gamma, bias, support vectors and
  /// coefficients) to `out` in the stable little-endian cache layout.
  void SerializeTo(util::ByteWriter* out) const;

  /// Restores a machine written by SerializeTo.
  Status DeserializeFrom(util::ByteReader* in);

 private:
  double Kernel(const double* a, const double* b) const;

  SvmConfig config_;
  double gamma_ = 1.0;
  double bias_ = 0.0;
  int num_features_ = 0;
  std::vector<std::vector<double>> sv_x_;  // support vectors
  std::vector<double> sv_coef_;            // alpha_i * y_i
};

}  // namespace reds::ml

#endif  // REDS_ML_SVM_H_
