// CART-style binary regression tree (exact greedy, variance-reduction
// splitting). With {0,1} targets this is equivalent to Gini splitting; leaf
// values are class-1 probabilities. Building block of the random forest.
//
// Split search runs on one of three backends (TreeConfig::backend): the
// reference sort-per-node scan (kExact), presorted per-feature index arrays
// partitioned down the tree (kPresorted, bit-identical to exact), or binned
// gradient histograms over a BinnedIndex (kHistogram: O(bins) scans with
// parent-minus-sibling subtraction; identical to exact for {0,1} targets
// whenever every feature has at most 256 distinct values -- see
// ml/histogram.h for the precise equivalence contract).
#ifndef REDS_ML_CART_H_
#define REDS_ML_CART_H_

#include <cstdint>
#include <vector>

#include "core/binned_index.h"
#include "core/column_index.h"
#include "core/dataset.h"
#include "ml/histogram.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds::ml {

/// Growth limits for a single tree.
struct TreeConfig {
  int max_depth = -1;        // -1: unlimited
  int min_samples_leaf = 1;  // minimal rows per leaf
  int min_samples_split = 2; // minimal rows to attempt a split
  int mtry = -1;             // features sampled per split; -1: all
  double min_gain = 1e-12;   // minimal SSE reduction to accept a split
  SplitBackend backend = SplitBackend::kPresorted;
  int threads = 1;           // feature-parallel split search when > 1
  // Frontier order. kLeafWise takes effect on the histogram backend only
  // (other backends grow depth-wise regardless): a max-gain priority queue
  // over open leaves, capped at max_leaves when > 0, with every other stop
  // (max_depth, min_samples_*, min_gain) unchanged. Without a cap and with
  // untied gains the fitted function equals depth-wise's (node order
  // differs). Under mtry the per-node feature draws happen in creation
  // order instead of expansion order, so mtry forests differ from
  // depth-wise ones (both are valid draws of the same scheme).
  GrowthPolicy growth = GrowthPolicy::kDepthWise;
  int max_leaves = 0;        // leaf-wise cap; 0 = unlimited
};

/// A fitted regression tree. Nodes are stored in a flat array.
class RegressionTree {
 public:
  /// Fits the tree on the given rows of d (duplicates allowed, enabling
  /// bootstrap samples). `rng` drives mtry feature subsampling. Pass a
  /// prebuilt ColumnIndex of d to derive the per-feature sorted orders by
  /// counting instead of comparison sorts (the forest shares one index
  /// across all trees); when null, orders are sorted per fit. The
  /// histogram backend additionally takes the dataset's BinnedIndex
  /// (built privately when null).
  void Fit(const Dataset& d, const std::vector<int>& rows,
           const TreeConfig& config, Rng* rng,
           const ColumnIndex* index = nullptr,
           const BinnedIndex* binned = nullptr);

  /// Convenience: fit on all rows.
  void Fit(const Dataset& d, const TreeConfig& config, Rng* rng,
           const ColumnIndex* index = nullptr,
           const BinnedIndex* binned = nullptr);

  /// Mean target of the leaf containing x.
  double Predict(const double* x) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  int depth() const;
  bool fitted() const { return !nodes_.empty(); }

  /// Appends the fitted tree (flat node array) to `out` in the stable
  /// little-endian cache layout.
  void SerializeTo(util::ByteWriter* out) const;

  /// Restores a tree written by SerializeTo. Validates that split features
  /// lie in [0, num_features), and that children point strictly forward in
  /// the node array (true of every fitted tree, which appends children
  /// after their parent) -- so even a checksum-valid but hostile payload
  /// cannot produce out-of-bounds reads or a non-terminating Predict.
  Status DeserializeFrom(util::ByteReader* in, int num_features);

 private:
  struct Node {
    int feature = -1;        // -1: leaf
    double threshold = 0.0;  // go left iff x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf prediction (mean target)
  };

  struct FitContext;

  int Build(FitContext* ctx, int begin, int end, int depth);
  int BuildHistogram(FitContext* ctx, int begin, int end, int depth,
                     std::vector<HistBin> hist);
  int BuildHistogramLeafWise(FitContext* ctx, int begin, int end);
  int BuildReference(const Dataset& d, std::vector<int>* rows, int begin,
                     int end, int depth, const TreeConfig& config, Rng* rng);
  int DepthOf(int node) const;

  std::vector<Node> nodes_;
};

}  // namespace reds::ml

#endif  // REDS_ML_CART_H_
