// CART-style binary regression tree (exact greedy, variance-reduction
// splitting). With {0,1} targets this is equivalent to Gini splitting; leaf
// values are class-1 probabilities. Building block of the random forest.
#ifndef REDS_ML_CART_H_
#define REDS_ML_CART_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "util/rng.h"

namespace reds::ml {

/// Growth limits for a single tree.
struct TreeConfig {
  int max_depth = -1;        // -1: unlimited
  int min_samples_leaf = 1;  // minimal rows per leaf
  int min_samples_split = 2; // minimal rows to attempt a split
  int mtry = -1;             // features sampled per split; -1: all
  double min_gain = 1e-12;   // minimal SSE reduction to accept a split
};

/// A fitted regression tree. Nodes are stored in a flat array.
class RegressionTree {
 public:
  /// Fits the tree on the given rows of d (duplicates allowed, enabling
  /// bootstrap samples). `rng` drives mtry feature subsampling.
  void Fit(const Dataset& d, const std::vector<int>& rows,
           const TreeConfig& config, Rng* rng);

  /// Convenience: fit on all rows.
  void Fit(const Dataset& d, const TreeConfig& config, Rng* rng);

  /// Mean target of the leaf containing x.
  double Predict(const double* x) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  int depth() const;
  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;        // -1: leaf
    double threshold = 0.0;  // go left iff x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf prediction (mean target)
  };

  int Build(const Dataset& d, std::vector<int>* rows, int begin, int end,
            int depth, const TreeConfig& config, Rng* rng);
  int DepthOf(int node) const;

  std::vector<Node> nodes_;
};

}  // namespace reds::ml

#endif  // REDS_ML_CART_H_
