// k-fold cross-validated grid tuning for the metamodels, mimicking the
// paper's use of caret's default hyperparameter optimization (Section 8.4.3)
// at laptop scale.
#ifndef REDS_ML_TUNING_H_
#define REDS_ML_TUNING_H_

#include <cstdint>
#include <memory>

#include "core/dataset.h"
#include "ml/model.h"

namespace reds::ml {

/// Grid sizes for tuning: kQuick shrinks grids and ensemble sizes so the
/// default bench runs stay fast; kFull approximates the paper's setting.
enum class TuningBudget { kQuick, kFull };

struct TuningConfig {
  TuningBudget budget = TuningBudget::kQuick;
  int folds = 5;
};

/// Splits rows into k folds (round-robin over a shuffled permutation) and
/// returns fold ids per row.
std::vector<int> FoldAssignment(int n, int k, uint64_t seed);

/// Tunes the given metamodel family by grid search with k-fold CV on
/// log-loss, then refits the winning configuration on all of d.
std::unique_ptr<Metamodel> TuneAndFit(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      const TuningConfig& config = {});

/// Fits the family with library defaults (no tuning).
std::unique_ptr<Metamodel> FitDefault(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      TuningBudget budget = TuningBudget::kQuick);

/// TuneAndFit when `tune`, else FitDefault: the single dispatch both the
/// inline REDS path and the engine's metamodel cache use, so cached and
/// uncached fits cannot drift apart.
std::unique_ptr<Metamodel> FitMetamodel(MetamodelKind kind, const Dataset& d,
                                        uint64_t seed, bool tune,
                                        TuningBudget budget);

}  // namespace reds::ml

#endif  // REDS_ML_TUNING_H_
