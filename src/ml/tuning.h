// k-fold cross-validated grid tuning for the metamodels, mimicking the
// paper's use of caret's default hyperparameter optimization (Section 8.4.3)
// at laptop scale. Folds -- and the per-fold columnar/binned views the tree
// learners scan -- are built once per tuning run and shared by the whole
// grid, caret-style, instead of being re-derived per grid point.
#ifndef REDS_ML_TUNING_H_
#define REDS_ML_TUNING_H_

#include <cstdint>
#include <memory>

#include "core/binned_index.h"
#include "core/column_index.h"
#include "core/dataset.h"
#include "ml/histogram.h"
#include "ml/model.h"

namespace reds::ml {

/// Grid sizes for tuning: kQuick shrinks grids and ensemble sizes so the
/// default bench runs stay fast; kFull approximates the paper's setting.
enum class TuningBudget { kQuick, kFull };

/// How the k-fold grid search holds its folds. kStreamed (default) fits
/// every candidate through per-fold row views over one shared full-data
/// index, so tuning residency stays O(1 fold) regardless of k; it is
/// bit-identical to kMaterialized wherever the backend index is exact
/// (presorted always; histogram under exact packing), and picks the same
/// grid cell. kMaterialized copies and re-indexes every fold's training
/// matrix up front -- retained as the reference plan the streamed one is
/// equivalence-tested against.
enum class CvFoldPlan { kStreamed, kMaterialized };

struct TuningConfig {
  TuningBudget budget = TuningBudget::kQuick;
  int folds = 5;
  /// Split-search kernel every tree candidate in the grid runs on.
  SplitBackend backend = SplitBackend::kPresorted;
  CvFoldPlan fold_plan = CvFoldPlan::kStreamed;
  /// Tree growth order for the tree families (see ml/histogram.h); applied
  /// to every grid candidate and to the final refit.
  GrowthPolicy growth = GrowthPolicy::kDepthWise;
  int max_leaves = 0;  // leaf-wise cap per tree; 0 = unlimited
};

/// Splits rows into k folds (round-robin over a shuffled permutation) and
/// returns fold ids per row.
std::vector<int> FoldAssignment(int n, int k, uint64_t seed);

/// Tunes the given metamodel family by grid search with k-fold CV on
/// log-loss, then refits the winning configuration on all of d. Every grid
/// candidate is evaluated on the same folds. Under the default streamed
/// fold plan the candidates fit through row views over one shared
/// full-data index (prebuilt `index`/`binned` of d are reused when given);
/// under the materialized plan each fold's training subset is copied and
/// indexed exactly once, grid-wide.
std::unique_ptr<Metamodel> TuneAndFit(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      const TuningConfig& config = {},
                                      const ColumnIndex* index = nullptr,
                                      const BinnedIndex* binned = nullptr);

/// Cell-level view of TuneAndFit's hyperparameter grid, for sharding the
/// CV search across workers. The grid enumeration is deterministic in
/// (kind, num_features, config) with a contractual cell order, so a
/// coordinator that shards cell indices, collects per-cell losses, and
/// argmins first-wins in cell order picks exactly PickBest's winner.
int TuningGridSize(MetamodelKind kind, int num_features,
                   const TuningConfig& config);

/// Mean CV log-loss of grid cell `cell` under the streamed fold plan, with
/// the same folds (seed-derived) and per-cell seed stream as TuneAndFit --
/// evaluating a cell here (e.g. on a shard worker) or inline gives the
/// same double. Prebuilt full-data indexes of d are reused when given.
double TuningCellLoss(MetamodelKind kind, int cell, const Dataset& d,
                      uint64_t seed, const TuningConfig& config,
                      const ColumnIndex* index = nullptr,
                      const BinnedIndex* binned = nullptr);

/// Refits grid cell `cell`'s configuration on all of d with TuneAndFit's
/// refit seed stream: TuningCellFit(kind, winner, ...) reproduces the model
/// TuneAndFit returns, bit for bit.
std::unique_ptr<Metamodel> TuningCellFit(MetamodelKind kind, int cell,
                                         const Dataset& d, uint64_t seed,
                                         const TuningConfig& config,
                                         const ColumnIndex* index = nullptr,
                                         const BinnedIndex* binned = nullptr);

/// Fits the family with library defaults (no tuning). Prebuilt indexes of d
/// (e.g. the engine's shared per-dataset caches) feed the tree learners'
/// presorted/histogram split search; when null they build their own.
std::unique_ptr<Metamodel> FitDefault(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      TuningBudget budget = TuningBudget::kQuick,
                                      const ColumnIndex* index = nullptr,
                                      const BinnedIndex* binned = nullptr,
                                      SplitBackend backend =
                                          SplitBackend::kPresorted,
                                      GrowthPolicy growth =
                                          GrowthPolicy::kDepthWise,
                                      int max_leaves = 0);

/// TuneAndFit when `tune`, else FitDefault: the single dispatch both the
/// inline REDS path and the engine's metamodel cache use, so cached and
/// uncached fits cannot drift apart. `index`/`binned` feed the untuned fit
/// and the tuned path's streamed fold views alike.
std::unique_ptr<Metamodel> FitMetamodel(MetamodelKind kind, const Dataset& d,
                                        uint64_t seed, bool tune,
                                        TuningBudget budget,
                                        const ColumnIndex* index = nullptr,
                                        const BinnedIndex* binned = nullptr,
                                        SplitBackend backend =
                                            SplitBackend::kPresorted,
                                        GrowthPolicy growth =
                                            GrowthPolicy::kDepthWise,
                                        int max_leaves = 0);

}  // namespace reds::ml

#endif  // REDS_ML_TUNING_H_
