// k-fold cross-validated grid tuning for the metamodels, mimicking the
// paper's use of caret's default hyperparameter optimization (Section 8.4.3)
// at laptop scale. Folds -- and the per-fold columnar/binned views the tree
// learners scan -- are built once per tuning run and shared by the whole
// grid, caret-style, instead of being re-derived per grid point.
#ifndef REDS_ML_TUNING_H_
#define REDS_ML_TUNING_H_

#include <cstdint>
#include <memory>

#include "core/binned_index.h"
#include "core/column_index.h"
#include "core/dataset.h"
#include "ml/histogram.h"
#include "ml/model.h"

namespace reds::ml {

/// Grid sizes for tuning: kQuick shrinks grids and ensemble sizes so the
/// default bench runs stay fast; kFull approximates the paper's setting.
enum class TuningBudget { kQuick, kFull };

struct TuningConfig {
  TuningBudget budget = TuningBudget::kQuick;
  int folds = 5;
  /// Split-search kernel every tree candidate in the grid runs on.
  SplitBackend backend = SplitBackend::kPresorted;
};

/// Splits rows into k folds (round-robin over a shuffled permutation) and
/// returns fold ids per row.
std::vector<int> FoldAssignment(int n, int k, uint64_t seed);

/// Tunes the given metamodel family by grid search with k-fold CV on
/// log-loss, then refits the winning configuration on all of d. Every grid
/// candidate is evaluated on the same folds, whose training subsets are
/// indexed (ColumnIndex, plus BinnedIndex under the histogram backend)
/// exactly once.
std::unique_ptr<Metamodel> TuneAndFit(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      const TuningConfig& config = {});

/// Fits the family with library defaults (no tuning). Prebuilt indexes of d
/// (e.g. the engine's shared per-dataset caches) feed the tree learners'
/// presorted/histogram split search; when null they build their own.
std::unique_ptr<Metamodel> FitDefault(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      TuningBudget budget = TuningBudget::kQuick,
                                      const ColumnIndex* index = nullptr,
                                      const BinnedIndex* binned = nullptr,
                                      SplitBackend backend =
                                          SplitBackend::kPresorted);

/// TuneAndFit when `tune`, else FitDefault: the single dispatch both the
/// inline REDS path and the engine's metamodel cache use, so cached and
/// uncached fits cannot drift apart. `index`/`binned` are used on the
/// untuned path; tuned fits run on CV-fold subsets with their own indexes.
std::unique_ptr<Metamodel> FitMetamodel(MetamodelKind kind, const Dataset& d,
                                        uint64_t seed, bool tune,
                                        TuningBudget budget,
                                        const ColumnIndex* index = nullptr,
                                        const BinnedIndex* binned = nullptr,
                                        SplitBackend backend =
                                            SplitBackend::kPresorted);

}  // namespace reds::ml

#endif  // REDS_ML_TUNING_H_
