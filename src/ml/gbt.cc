#include "ml/gbt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace reds::ml {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// Newton gain of a candidate child: G^2 / (H + lambda).
double LeafScore(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

double GradientBoostedTrees::Tree::Predict(const double* x) const {
  int node = 0;
  while (nodes[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes[static_cast<size_t>(node)];
    node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes[static_cast<size_t>(node)].weight;
}

int GradientBoostedTrees::BuildNode(const Dataset& d,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess,
                                    std::vector<int>* rows, int begin, int end,
                                    int depth,
                                    const std::vector<int>& features,
                                    Tree* tree) const {
  double g_sum = 0.0, h_sum = 0.0;
  for (int i = begin; i < end; ++i) {
    const int r = (*rows)[static_cast<size_t>(i)];
    g_sum += grad[static_cast<size_t>(r)];
    h_sum += hess[static_cast<size_t>(r)];
  }

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_index)].weight =
      -config_.eta * g_sum / (h_sum + config_.lambda);

  if (depth >= config_.max_depth || end - begin < 2) return node_index;

  // Exact greedy split search over the candidate features.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 0.0;
  const double parent_score = LeafScore(g_sum, h_sum, config_.lambda);
  std::vector<std::pair<double, int>> order;  // (x value, row id)
  order.reserve(static_cast<size_t>(end - begin));
  for (int f : features) {
    order.clear();
    for (int i = begin; i < end; ++i) {
      const int r = (*rows)[static_cast<size_t>(i)];
      order.emplace_back(d.x(r, f), r);
    }
    std::sort(order.begin(), order.end());
    double gl = 0.0, hl = 0.0;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      gl += grad[static_cast<size_t>(order[i].second)];
      hl += hess[static_cast<size_t>(order[i].second)];
      if (order[i].first == order[i + 1].first) continue;
      const double gr = g_sum - gl;
      const double hr = h_sum - hl;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) {
        continue;
      }
      const double gain = 0.5 * (LeafScore(gl, hl, config_.lambda) +
                                 LeafScore(gr, hr, config_.lambda) -
                                 parent_score) -
                          config_.gamma;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (order[i].first + order[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_index;

  auto mid_it =
      std::partition(rows->begin() + begin, rows->begin() + end, [&](int r) {
        return d.x(r, best_feature) <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - rows->begin());
  if (mid == begin || mid == end) return node_index;  // degenerate (ties)

  const int left =
      BuildNode(d, grad, hess, rows, begin, mid, depth + 1, features, tree);
  const int right =
      BuildNode(d, grad, hess, rows, mid, end, depth + 1, features, tree);
  Node& nd = tree->nodes[static_cast<size_t>(node_index)];
  nd.feature = best_feature;
  nd.threshold = best_threshold;
  nd.left = left;
  nd.right = right;
  return node_index;
}

void GradientBoostedTrees::Fit(const Dataset& d, uint64_t seed) {
  assert(d.num_rows() > 0);
  num_features_ = d.num_cols();
  const int n = d.num_rows();
  base_margin_ = std::log(config_.base_score / (1.0 - config_.base_score));
  std::vector<double> margin(static_cast<size_t>(n), base_margin_);
  std::vector<double> grad(static_cast<size_t>(n));
  std::vector<double> hess(static_cast<size_t>(n));
  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_rounds));

  Rng rng(DeriveSeed(seed, 0x67627400ULL));
  for (int round = 0; round < config_.num_rounds; ++round) {
    for (int i = 0; i < n; ++i) {
      const double p = Sigmoid(margin[static_cast<size_t>(i)]);
      grad[static_cast<size_t>(i)] = p - d.y(i);
      hess[static_cast<size_t>(i)] = std::max(p * (1.0 - p), 1e-16);
    }

    // Row subsample for this round.
    std::vector<int> rows;
    rows.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (config_.subsample >= 1.0 || rng.Bernoulli(config_.subsample)) {
        rows.push_back(i);
      }
    }
    if (rows.empty()) rows.push_back(static_cast<int>(rng.UniformInt(n)));

    // Feature subsample for this round.
    std::vector<int> features;
    if (config_.colsample < 1.0) {
      const int k = std::max(
          1, static_cast<int>(std::lround(config_.colsample * d.num_cols())));
      features = rng.SampleWithoutReplacement(d.num_cols(), k);
    } else {
      features.resize(static_cast<size_t>(d.num_cols()));
      std::iota(features.begin(), features.end(), 0);
    }

    Tree tree;
    BuildNode(d, grad, hess, &rows, 0, static_cast<int>(rows.size()), 0,
              features, &tree);
    for (int i = 0; i < n; ++i) {
      margin[static_cast<size_t>(i)] += tree.Predict(d.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedTrees::PredictMargin(const double* x) const {
  double m = base_margin_;
  for (const auto& tree : trees_) m += tree.Predict(x);
  return m;
}

double GradientBoostedTrees::PredictProb(const double* x) const {
  return Sigmoid(PredictMargin(x));
}

}  // namespace reds::ml
