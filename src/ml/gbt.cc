#include "ml/gbt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <queue>

#include "ml/order_partition.h"
#include "ml/tree_wire.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace reds::ml {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// Newton gain of a candidate child: G^2 / (H + lambda).
double LeafScore(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

// Per-round presorted state: for each of the round's candidate features, the
// in-bag rows ascending by that feature's value (derived from the shared
// ColumnIndex permutation, partitioned stably down the tree). `rows` mirrors
// the reference implementation's row array -- partitioned unstably with the
// same boolean sequence -- so node gradient sums accumulate in the exact
// same order and the fitted model is bit-identical to the reference.
struct GradientBoostedTrees::RoundContext {
  const ColumnIndex* index = nullptr;
  const std::vector<double>* grad = nullptr;
  const std::vector<double>* hess = nullptr;
  const std::vector<int>* features = nullptr;  // this round's candidates
  std::vector<std::vector<int>> order;         // per candidate: rows by value
  std::vector<int> rows;                       // reference-order row list
  std::vector<uint8_t> goes_left;              // by row id
  std::vector<int> scratch;
  ThreadPool* pool = nullptr;
  double min_child_weight = 1.0;
  double lambda = 1.0;
  double gamma = 0.0;
  double eta = 0.3;
  int max_depth = 4;
  // Histogram backend only: codes are read from `binned` by row id, so no
  // per-round gathering or order derivation is needed at all.
  const BinnedIndex* binned = nullptr;
  int hist_stride = 0;         // bins reserved per candidate slot
  HistogramPool* hist_pool = nullptr;
  // Interleaved (grad, hess) pairs, packed once per round: the node
  // accumulations then touch one random cache line per row instead of two.
  const double* gh = nullptr;
  int max_leaves = 0;          // leaf-wise growth only; 0 = unlimited
};

double GradientBoostedTrees::Tree::Predict(const double* x) const {
  int node = 0;
  while (nodes[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes[static_cast<size_t>(node)];
    node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes[static_cast<size_t>(node)].weight;
}

int GradientBoostedTrees::BuildNode(const Dataset& d,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess,
                                    std::vector<int>* rows, int begin, int end,
                                    int depth,
                                    const std::vector<int>& features,
                                    Tree* tree) const {
  double g_sum = 0.0, h_sum = 0.0;
  for (int i = begin; i < end; ++i) {
    const int r = (*rows)[static_cast<size_t>(i)];
    g_sum += grad[static_cast<size_t>(r)];
    h_sum += hess[static_cast<size_t>(r)];
  }

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_index)].weight =
      -config_.eta * g_sum / (h_sum + config_.lambda);

  if (depth >= config_.max_depth || end - begin < 2) return node_index;

  // Exact greedy split search over the candidate features.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 0.0;
  const double parent_score = LeafScore(g_sum, h_sum, config_.lambda);
  std::vector<std::pair<double, int>> order;  // (x value, row id)
  order.reserve(static_cast<size_t>(end - begin));
  for (int f : features) {
    order.clear();
    for (int i = begin; i < end; ++i) {
      const int r = (*rows)[static_cast<size_t>(i)];
      order.emplace_back(d.x(r, f), r);
    }
    std::sort(order.begin(), order.end());
    double gl = 0.0, hl = 0.0;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      gl += grad[static_cast<size_t>(order[i].second)];
      hl += hess[static_cast<size_t>(order[i].second)];
      if (order[i].first == order[i + 1].first) continue;
      const double gr = g_sum - gl;
      const double hr = h_sum - hl;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) {
        continue;
      }
      const double gain = 0.5 * (LeafScore(gl, hl, config_.lambda) +
                                 LeafScore(gr, hr, config_.lambda) -
                                 parent_score) -
                          config_.gamma;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (order[i].first + order[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_index;

  auto mid_it =
      std::partition(rows->begin() + begin, rows->begin() + end, [&](int r) {
        return d.x(r, best_feature) <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - rows->begin());
  if (mid == begin || mid == end) return node_index;  // degenerate (ties)

  const int left =
      BuildNode(d, grad, hess, rows, begin, mid, depth + 1, features, tree);
  const int right =
      BuildNode(d, grad, hess, rows, mid, end, depth + 1, features, tree);
  Node& nd = tree->nodes[static_cast<size_t>(node_index)];
  nd.feature = best_feature;
  nd.threshold = best_threshold;
  nd.left = left;
  nd.right = right;
  return node_index;
}

// Histogram split search: per-candidate gradient/hessian histograms over
// the shared BinnedIndex codes, parent-minus-sibling subtraction for the
// larger child, O(bins) candidate scans between consecutive non-empty bins.
// Node aggregates and the row partition run exactly like the presorted
// path, so leaf weights and tree shape differ from it only where the
// binning coarsens the candidate thresholds.
int GradientBoostedTrees::BuildNodeHistogram(RoundContext* ctx, int begin,
                                             int end, int depth,
                                             std::vector<HistBin> hist,
                                             Tree* tree) const {
  const std::vector<double>& grad = *ctx->grad;
  const std::vector<double>& hess = *ctx->hess;
  double g_sum = 0.0, h_sum = 0.0;
  for (int i = begin; i < end; ++i) {
    const int r = ctx->rows[static_cast<size_t>(i)];
    g_sum += grad[static_cast<size_t>(r)];
    h_sum += hess[static_cast<size_t>(r)];
  }

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_index)].weight =
      -ctx->eta * g_sum / (h_sum + ctx->lambda);

  if (depth >= ctx->max_depth || end - begin < 2) {
    if (!hist.empty()) ctx->hist_pool->Release(std::move(hist));
    return node_index;
  }

  const int n = end - begin;
  const double parent_score = LeafScore(g_sum, h_sum, ctx->lambda);
  const std::vector<int>& features = *ctx->features;
  const size_t stride = static_cast<size_t>(ctx->hist_stride);

  if (hist.empty()) {
    hist = ctx->hist_pool->Acquire();
    const int* ids = ctx->rows.data() + begin;
    for (size_t fi = 0; fi < features.size(); ++fi) {
      HistBin* slot = hist.data() + fi * stride;
      std::fill_n(slot, ctx->binned->num_bins(features[fi]), HistBin{});
      AccumulateHistogramPairs(ctx->binned->codes(features[fi]).data(), ids,
                               n, ctx->gh, slot);
    }
  }

  struct Candidate {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };
  auto search_feature = [&](size_t fi) {
    Candidate cand;
    const int f = features[fi];
    const HistBin* hb = hist.data() + fi * stride;
    const int num_bins = ctx->binned->num_bins(f);
    double gl = 0.0, hl = 0.0;
    int prev = -1;  // last non-empty bin folded into the left side
    for (int b = 0; b < num_bins; ++b) {
      if (hb[b].count == 0) continue;
      if (prev >= 0) {
        const double gr = g_sum - gl;
        const double hr = h_sum - hl;
        if (hl >= ctx->min_child_weight && hr >= ctx->min_child_weight) {
          const double gain = 0.5 * (LeafScore(gl, hl, ctx->lambda) +
                                     LeafScore(gr, hr, ctx->lambda) -
                                     parent_score) -
                              ctx->gamma;
          if (gain > cand.gain) {
            cand.gain = gain;
            cand.feature = f;
            cand.threshold = 0.5 * (ctx->binned->bin_last(f, prev) +
                                    ctx->binned->bin_first(f, b));
          }
        }
      }
      gl += hb[b].g;
      hl += hb[b].h;
      prev = b;
    }
    return cand;
  };

  const Candidate best = BestSplitOverFeatures<Candidate>(
      ctx->pool, features.size(), n, search_feature);

  if (best.feature < 0) {
    ctx->hist_pool->Release(std::move(hist));
    return node_index;
  }

  // Partition by value against the recorded threshold (not by bin code), so
  // training membership always matches Predict's descent rule.
  const std::vector<double>& best_col = ctx->index->column(best.feature);
  int nl = 0;
  for (int i = begin; i < end; ++i) {
    const int r = ctx->rows[static_cast<size_t>(i)];
    const uint8_t left =
        best_col[static_cast<size_t>(r)] <= best.threshold ? 1 : 0;
    ctx->goes_left[static_cast<size_t>(r)] = left;
    nl += left;
  }
  const int mid = begin + nl;
  if (mid == begin || mid == end) {
    ctx->hist_pool->Release(std::move(hist));
    return node_index;  // degenerate (ties)
  }

  std::partition(ctx->rows.data() + begin, ctx->rows.data() + end,
                 [&](int r) {
                   return ctx->goes_left[static_cast<size_t>(r)] != 0;
                 });

  // Scan only the smaller child; the larger child's histogram is the
  // parent's minus the sibling's, reusing the parent's buffer. The round's
  // candidate features are fixed across the tree, so subtraction is always
  // valid (unlike CART under per-node mtry).
  const bool left_small = mid - begin <= end - mid;
  const int small_begin = left_small ? begin : mid;
  const int small_n = left_small ? mid - begin : end - mid;
  std::vector<HistBin> small = ctx->hist_pool->Acquire();
  const int* ids = ctx->rows.data() + small_begin;
  for (size_t fi = 0; fi < features.size(); ++fi) {
    HistBin* slot = small.data() + fi * stride;
    std::fill_n(slot, ctx->binned->num_bins(features[fi]), HistBin{});
    AccumulateHistogramPairs(ctx->binned->codes(features[fi]).data(), ids,
                             small_n, ctx->gh, slot);
  }
  for (size_t fi = 0; fi < features.size(); ++fi) {
    HistBin* parent = hist.data() + fi * stride;
    SubtractHistogram(parent, small.data() + fi * stride, parent,
                      ctx->binned->num_bins(features[fi]));
  }
  std::vector<HistBin> left_hist = left_small ? std::move(small)
                                              : std::move(hist);
  std::vector<HistBin> right_hist = left_small ? std::move(hist)
                                               : std::move(small);
  const int left =
      BuildNodeHistogram(ctx, begin, mid, depth + 1, std::move(left_hist), tree);
  const int right =
      BuildNodeHistogram(ctx, mid, end, depth + 1, std::move(right_hist), tree);
  Node& nd = tree->nodes[static_cast<size_t>(node_index)];
  nd.feature = best.feature;
  nd.threshold = best.threshold;
  nd.left = left;
  nd.right = right;
  return node_index;
}

// Best-first (leaf-wise) growth on the histogram backend: every open leaf
// carries its histogram and best candidate split, and a max-gain priority
// queue decides which leaf splits next, so a max_leaves cap spends the leaf
// budget where the gain is (LightGBM's growth order). Because a node's row
// segment depends only on its ancestors' partitions -- which precede it in
// *any* expansion order -- each expanded node sees bit-identical gradient
// sums, candidate scans, and partitions to the depth-wise recursion; with
// no cap and untied gains the fitted function is therefore identical, only
// the node-array order differs (children still always follow their parent,
// preserving the tree_wire strictly-forward invariant).
int GradientBoostedTrees::BuildLeafWise(RoundContext* ctx, int begin, int end,
                                        Tree* tree) const {
  const std::vector<double>& grad = *ctx->grad;
  const std::vector<double>& hess = *ctx->hess;
  const std::vector<int>& features = *ctx->features;
  const size_t stride = static_cast<size_t>(ctx->hist_stride);

  struct Candidate {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };
  struct OpenLeaf {
    int node = -1;
    int begin = 0;
    int end = 0;
    int depth = 0;
    double g_sum = 0.0;
    double h_sum = 0.0;
    std::vector<HistBin> hist;
    Candidate best;
  };

  auto node_sums = [&](int b, int e, double* g_sum, double* h_sum) {
    double g = 0.0, h = 0.0;
    for (int i = b; i < e; ++i) {
      const int r = ctx->rows[static_cast<size_t>(i)];
      g += grad[static_cast<size_t>(r)];
      h += hess[static_cast<size_t>(r)];
    }
    *g_sum = g;
    *h_sum = h;
  };
  auto accumulate = [&](int b, int e) {
    std::vector<HistBin> hist = ctx->hist_pool->Acquire();
    const int* ids = ctx->rows.data() + b;
    for (size_t fi = 0; fi < features.size(); ++fi) {
      HistBin* slot = hist.data() + fi * stride;
      std::fill_n(slot, ctx->binned->num_bins(features[fi]), HistBin{});
      AccumulateHistogramPairs(ctx->binned->codes(features[fi]).data(), ids,
                               e - b, ctx->gh, slot);
    }
    return hist;
  };
  // Same candidate scan as BuildNodeHistogram's search_feature.
  auto search = [&](const OpenLeaf& leaf) {
    const double parent_score = LeafScore(leaf.g_sum, leaf.h_sum, ctx->lambda);
    auto search_feature = [&](size_t fi) {
      Candidate cand;
      const int f = features[fi];
      const HistBin* hb = leaf.hist.data() + fi * stride;
      const int num_bins = ctx->binned->num_bins(f);
      double gl = 0.0, hl = 0.0;
      int prev = -1;
      for (int b = 0; b < num_bins; ++b) {
        if (hb[b].count == 0) continue;
        if (prev >= 0) {
          const double gr = leaf.g_sum - gl;
          const double hr = leaf.h_sum - hl;
          if (hl >= ctx->min_child_weight && hr >= ctx->min_child_weight) {
            const double gain = 0.5 * (LeafScore(gl, hl, ctx->lambda) +
                                       LeafScore(gr, hr, ctx->lambda) -
                                       parent_score) -
                                ctx->gamma;
            if (gain > cand.gain) {
              cand.gain = gain;
              cand.feature = f;
              cand.threshold = 0.5 * (ctx->binned->bin_last(f, prev) +
                                      ctx->binned->bin_first(f, b));
            }
          }
        }
        gl += hb[b].g;
        hl += hb[b].h;
        prev = b;
      }
      return cand;
    };
    return BestSplitOverFeatures<Candidate>(ctx->pool, features.size(),
                                            leaf.end - leaf.begin,
                                            search_feature);
  };

  std::vector<OpenLeaf> open;
  // (gain, -slot): ties prefer the earliest-created slot, deterministically.
  std::priority_queue<std::pair<double, int>> queue;

  // Creates the node, and when it is splittable enqueues it as an open
  // leaf (building its histogram unless the parent handed one down).
  auto make_node = [&](int b, int e, int depth,
                       std::vector<HistBin> hist) -> int {
    double g_sum = 0.0, h_sum = 0.0;
    node_sums(b, e, &g_sum, &h_sum);
    const int node_index = static_cast<int>(tree->nodes.size());
    tree->nodes.emplace_back();
    tree->nodes[static_cast<size_t>(node_index)].weight =
        -ctx->eta * g_sum / (h_sum + ctx->lambda);
    if (depth >= ctx->max_depth || e - b < 2) {
      if (!hist.empty()) ctx->hist_pool->Release(std::move(hist));
      return node_index;
    }
    OpenLeaf leaf;
    leaf.node = node_index;
    leaf.begin = b;
    leaf.end = e;
    leaf.depth = depth;
    leaf.g_sum = g_sum;
    leaf.h_sum = h_sum;
    leaf.hist = hist.empty() ? accumulate(b, e) : std::move(hist);
    leaf.best = search(leaf);
    if (leaf.best.feature < 0) {
      ctx->hist_pool->Release(std::move(leaf.hist));
      return node_index;
    }
    const int slot = static_cast<int>(open.size());
    open.push_back(std::move(leaf));
    queue.emplace(open[static_cast<size_t>(slot)].best.gain, -slot);
    return node_index;
  };

  make_node(begin, end, 0, {});
  int num_leaves = 1;
  while (!queue.empty() &&
         (ctx->max_leaves <= 0 || num_leaves < ctx->max_leaves)) {
    const int slot = -queue.top().second;
    queue.pop();
    OpenLeaf leaf = std::move(open[static_cast<size_t>(slot)]);

    // Partition by value against the recorded threshold, exactly like the
    // depth-wise expansion of this node.
    const std::vector<double>& best_col = ctx->index->column(leaf.best.feature);
    int nl = 0;
    for (int i = leaf.begin; i < leaf.end; ++i) {
      const int r = ctx->rows[static_cast<size_t>(i)];
      const uint8_t left =
          best_col[static_cast<size_t>(r)] <= leaf.best.threshold ? 1 : 0;
      ctx->goes_left[static_cast<size_t>(r)] = left;
      nl += left;
    }
    const int mid = leaf.begin + nl;
    if (mid == leaf.begin || mid == leaf.end) {
      ctx->hist_pool->Release(std::move(leaf.hist));
      continue;  // degenerate (ties): the node stays a leaf
    }
    std::partition(ctx->rows.data() + leaf.begin, ctx->rows.data() + leaf.end,
                   [&](int r) {
                     return ctx->goes_left[static_cast<size_t>(r)] != 0;
                   });

    // Scan the smaller child; the larger child inherits parent - sibling in
    // the parent's buffer.
    const bool left_small = mid - leaf.begin <= leaf.end - mid;
    const int small_begin = left_small ? leaf.begin : mid;
    const int small_end = left_small ? mid : leaf.end;
    std::vector<HistBin> small = accumulate(small_begin, small_end);
    for (size_t fi = 0; fi < features.size(); ++fi) {
      HistBin* parent = leaf.hist.data() + fi * stride;
      SubtractHistogram(parent, small.data() + fi * stride, parent,
                        ctx->binned->num_bins(features[fi]));
    }
    std::vector<HistBin> left_hist =
        left_small ? std::move(small) : std::move(leaf.hist);
    std::vector<HistBin> right_hist =
        left_small ? std::move(leaf.hist) : std::move(small);

    const int left_node =
        make_node(leaf.begin, mid, leaf.depth + 1, std::move(left_hist));
    const int right_node =
        make_node(mid, leaf.end, leaf.depth + 1, std::move(right_hist));
    Node& nd = tree->nodes[static_cast<size_t>(leaf.node)];
    nd.feature = leaf.best.feature;
    nd.threshold = leaf.best.threshold;
    nd.left = left_node;
    nd.right = right_node;
    ++num_leaves;
  }
  // Leaves still queued when the cap fires keep their histograms; drain
  // them back to the pool.
  while (!queue.empty()) {
    const int slot = -queue.top().second;
    queue.pop();
    if (!open[static_cast<size_t>(slot)].hist.empty()) {
      ctx->hist_pool->Release(std::move(open[static_cast<size_t>(slot)].hist));
    }
  }
  return 0;
}

int GradientBoostedTrees::BuildNodeSorted(RoundContext* ctx, int begin,
                                          int end, int depth,
                                          Tree* tree) const {
  const std::vector<double>& grad = *ctx->grad;
  const std::vector<double>& hess = *ctx->hess;
  double g_sum = 0.0, h_sum = 0.0;
  for (int i = begin; i < end; ++i) {
    const int r = ctx->rows[static_cast<size_t>(i)];
    g_sum += grad[static_cast<size_t>(r)];
    h_sum += hess[static_cast<size_t>(r)];
  }

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_index)].weight =
      -ctx->eta * g_sum / (h_sum + ctx->lambda);

  if (depth >= ctx->max_depth || end - begin < 2) return node_index;

  const int n = end - begin;
  const double parent_score = LeafScore(g_sum, h_sum, ctx->lambda);
  const std::vector<int>& features = *ctx->features;

  struct Candidate {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };
  // Walks one candidate feature's value-ordered rows; same accumulation
  // order and gain math as the reference's sorted (value, row) pairs.
  auto search_feature = [&](size_t fi) {
    Candidate cand;
    const int f = features[fi];
    const std::vector<int>& ord = ctx->order[fi];
    const std::vector<double>& col = ctx->index->column(f);
    double gl = 0.0, hl = 0.0;
    for (int i = begin; i + 1 < end; ++i) {
      const int r = ord[static_cast<size_t>(i)];
      gl += grad[static_cast<size_t>(r)];
      hl += hess[static_cast<size_t>(r)];
      const int next = ord[static_cast<size_t>(i + 1)];
      if (col[static_cast<size_t>(r)] == col[static_cast<size_t>(next)]) {
        continue;
      }
      const double gr = g_sum - gl;
      const double hr = h_sum - hl;
      if (hl < ctx->min_child_weight || hr < ctx->min_child_weight) continue;
      const double gain = 0.5 * (LeafScore(gl, hl, ctx->lambda) +
                                 LeafScore(gr, hr, ctx->lambda) -
                                 parent_score) -
                          ctx->gamma;
      if (gain > cand.gain) {
        cand.gain = gain;
        cand.feature = f;
        cand.threshold = 0.5 * (col[static_cast<size_t>(r)] +
                                col[static_cast<size_t>(next)]);
      }
    }
    return cand;
  };

  const Candidate best = BestSplitOverFeatures<Candidate>(
      ctx->pool, features.size(), n, search_feature);

  if (best.feature < 0) return node_index;

  const std::vector<double>& best_col = ctx->index->column(best.feature);
  int nl = 0;
  for (int i = begin; i < end; ++i) {
    const int r = ctx->rows[static_cast<size_t>(i)];
    const uint8_t left =
        best_col[static_cast<size_t>(r)] <= best.threshold ? 1 : 0;
    ctx->goes_left[static_cast<size_t>(r)] = left;
    nl += left;
  }
  const int mid = begin + nl;
  if (mid == begin || mid == end) return node_index;  // degenerate (ties)

  // rows partitions unstably with the reference's boolean sequence; the
  // per-feature orders partition stably to stay value-sorted.
  std::partition(ctx->rows.data() + begin, ctx->rows.data() + end,
                 [&](int r) {
                   return ctx->goes_left[static_cast<size_t>(r)] != 0;
                 });
  StablePartitionOrders(&ctx->order, begin, end, ctx->goes_left,
                        &ctx->scratch);

  const int left = BuildNodeSorted(ctx, begin, mid, depth + 1, tree);
  const int right = BuildNodeSorted(ctx, mid, end, depth + 1, tree);
  Node& nd = tree->nodes[static_cast<size_t>(node_index)];
  nd.feature = best.feature;
  nd.threshold = best.threshold;
  nd.left = left;
  nd.right = right;
  return node_index;
}

void GradientBoostedTrees::Fit(const Dataset& d, uint64_t seed) {
  FitImpl(d, nullptr, seed, nullptr, nullptr);
}

void GradientBoostedTrees::Fit(const Dataset& d, uint64_t seed,
                               const ColumnIndex* index,
                               const BinnedIndex* binned) {
  FitImpl(d, nullptr, seed, index, binned);
}

void GradientBoostedTrees::FitOnRows(const Dataset& d,
                                     const std::vector<int>& rows,
                                     uint64_t seed, const ColumnIndex* index,
                                     const BinnedIndex* binned) {
  // The view fit reads values/orders/codes through the full-data indexes;
  // without the backend's index there is nothing to view through, so fall
  // back to the materializing default.
  const bool have_views =
      (config_.backend == SplitBackend::kPresorted && index != nullptr) ||
      (config_.backend == SplitBackend::kHistogram && index != nullptr &&
       binned != nullptr);
  if (!have_views) {
    Metamodel::FitOnRows(d, rows, seed, index, binned);
    return;
  }
  FitImpl(d, &rows, seed, index, binned);
}

// The one fit body. With `fit_rows` the model trains on that row subset
// through the shared full-data indexes: per-position state (margin) lives
// at subset positions, per-row state (grad/hess/goes_left) stays indexed by
// full row id, and sorted orders come from filtering the full permutations
// by bag membership. Since fit_rows ascends by row id, subset positions are
// an order-preserving renumbering and every draw/accumulation matches the
// materialized subset fit bit for bit (see FitOnRows in the header).
void GradientBoostedTrees::FitImpl(const Dataset& d,
                                   const std::vector<int>* fit_rows,
                                   uint64_t seed, const ColumnIndex* index,
                                   const BinnedIndex* binned) {
  assert(d.num_rows() > 0);
  num_features_ = d.num_cols();
  const int n = d.num_rows();
  const int n_fit =
      fit_rows != nullptr ? static_cast<int>(fit_rows->size()) : n;
  assert(n_fit > 0);
  auto fit_row = [&](int i) {
    return fit_rows != nullptr ? (*fit_rows)[static_cast<size_t>(i)] : i;
  };
  base_margin_ = std::log(config_.base_score / (1.0 - config_.base_score));
  std::vector<double> margin(static_cast<size_t>(n_fit), base_margin_);
  std::vector<double> grad(static_cast<size_t>(n));
  std::vector<double> hess(static_cast<size_t>(n));
  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_rounds));

  // Both indexed backends need the column-major values (split search or
  // partition); the histogram backend additionally needs the quantization.
  std::shared_ptr<const ColumnIndex> owned;
  if (config_.backend != SplitBackend::kExact && index == nullptr) {
    owned = ColumnIndex::Build(d);
    index = owned.get();
  }
  assert(index == nullptr || (index->num_rows() == d.num_rows() &&
                              index->num_cols() == d.num_cols()));
  std::shared_ptr<const BinnedIndex> owned_binned;
  if (config_.backend == SplitBackend::kHistogram && binned == nullptr) {
    owned_binned = BinnedIndex::Build(*index);
    binned = owned_binned.get();
  }
  assert(config_.backend != SplitBackend::kHistogram ||
         (binned->num_rows() == d.num_rows() &&
          binned->num_cols() == d.num_cols()));
  std::unique_ptr<ThreadPool> pool;
  if (config_.backend != SplitBackend::kExact && config_.threads > 1 &&
      d.num_cols() > 1) {
    pool = std::make_unique<ThreadPool>(config_.threads);
  }
  std::unique_ptr<HistogramPool> hist_pool;
  if (config_.backend == SplitBackend::kHistogram) {
    hist_pool = std::make_unique<HistogramPool>(
        static_cast<size_t>(d.num_cols()) *
        static_cast<size_t>(binned->max_bins()));
  }
  std::vector<uint8_t> in_bag;  // reused per round
  util::PackedDoubleBuffer gh_pairs;  // reused per round (histogram backend)

  Rng rng(DeriveSeed(seed, 0x67627400ULL));
  for (int round = 0; round < config_.num_rounds; ++round) {
    for (int i = 0; i < n_fit; ++i) {
      const int r = fit_row(i);
      const double p = Sigmoid(margin[static_cast<size_t>(i)]);
      grad[static_cast<size_t>(r)] = p - d.y(r);
      hess[static_cast<size_t>(r)] = std::max(p * (1.0 - p), 1e-16);
    }
    if (config_.backend == SplitBackend::kHistogram) {
      // One O(n) sequential pack, amortized over every node x feature
      // accumulation of the round. (Subset fits pack the zero-initialized
      // out-of-subset slots too; those pairs are never gathered.)
      PackGradientPairs(grad.data(), hess.data(), n, &gh_pairs);
    }

    // Row subsample for this round.
    std::vector<int> rows;
    rows.reserve(static_cast<size_t>(n_fit));
    for (int i = 0; i < n_fit; ++i) {
      if (config_.subsample >= 1.0 || rng.Bernoulli(config_.subsample)) {
        rows.push_back(fit_row(i));
      }
    }
    if (rows.empty()) {
      rows.push_back(fit_row(static_cast<int>(rng.UniformInt(n_fit))));
    }

    // Feature subsample for this round.
    std::vector<int> features;
    if (config_.colsample < 1.0) {
      const int k = std::max(
          1, static_cast<int>(std::lround(config_.colsample * d.num_cols())));
      features = rng.SampleWithoutReplacement(d.num_cols(), k);
    } else {
      features.resize(static_cast<size_t>(d.num_cols()));
      std::iota(features.begin(), features.end(), 0);
    }

    Tree tree;
    if (config_.backend == SplitBackend::kExact) {
      BuildNode(d, grad, hess, &rows, 0, static_cast<int>(rows.size()), 0,
                features, &tree);
    } else {
      RoundContext ctx;
      ctx.index = index;
      ctx.grad = &grad;
      ctx.hess = &hess;
      ctx.features = &features;
      ctx.pool = pool.get();
      ctx.min_child_weight = config_.min_child_weight;
      ctx.lambda = config_.lambda;
      ctx.gamma = config_.gamma;
      ctx.eta = config_.eta;
      ctx.max_depth = config_.max_depth;
      const int in_round = static_cast<int>(rows.size());
      if (config_.backend == SplitBackend::kHistogram) {
        // Codes are read straight from the shared BinnedIndex by row id:
        // no per-round gather, no order derivation, no in-bag filtering.
        ctx.binned = binned;
        ctx.hist_stride = binned->max_bins();
        ctx.hist_pool = hist_pool.get();
        ctx.gh = gh_pairs.data();
        ctx.max_leaves = config_.max_leaves;
        ctx.rows = std::move(rows);
        ctx.goes_left.resize(static_cast<size_t>(n));
        if (config_.growth == GrowthPolicy::kLeafWise) {
          BuildLeafWise(&ctx, 0, in_round, &tree);
        } else {
          BuildNodeHistogram(&ctx, 0, in_round, 0, {}, &tree);
        }
      } else {
        ctx.order.resize(features.size());
        if (fit_rows == nullptr && in_round == n) {
          for (size_t fi = 0; fi < features.size(); ++fi) {
            ctx.order[fi] = index->sorted_rows(features[fi]);
          }
        } else {
          in_bag.assign(static_cast<size_t>(n), 0);
          for (int r : rows) in_bag[static_cast<size_t>(r)] = 1;
          for (size_t fi = 0; fi < features.size(); ++fi) {
            std::vector<int>& ord = ctx.order[fi];
            ord.reserve(static_cast<size_t>(in_round));
            for (int r : index->sorted_rows(features[fi])) {
              if (in_bag[static_cast<size_t>(r)]) ord.push_back(r);
            }
          }
        }
        ctx.rows = std::move(rows);
        ctx.goes_left.resize(static_cast<size_t>(n));
        ctx.scratch.resize(static_cast<size_t>(in_round));
        BuildNodeSorted(&ctx, 0, in_round, 0, &tree);
      }
    }
    for (int i = 0; i < n_fit; ++i) {
      margin[static_cast<size_t>(i)] += tree.Predict(d.row(fit_row(i)));
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedTrees::PredictMargin(const double* x) const {
  double m = base_margin_;
  for (const auto& tree : trees_) m += tree.Predict(x);
  return m;
}

double GradientBoostedTrees::PredictProb(const double* x) const {
  return Sigmoid(PredictMargin(x));
}

void GradientBoostedTrees::SerializeTo(util::ByteWriter* out) const {
  out->I32(num_features_);
  out->F64(base_margin_);
  out->U64(trees_.size());
  for (const Tree& tree : trees_) {
    SerializeTreeNodes(tree.nodes, &Node::weight, out);
  }
}

Status GradientBoostedTrees::DeserializeFrom(util::ByteReader* in) {
  num_features_ = in->I32();
  base_margin_ = in->F64();
  const uint64_t num_trees = in->U64();
  if (!in->ok() || num_features_ <= 0 || num_trees > in->remaining() / 8) {
    return Status::InvalidArgument("corrupt GBT: header");
  }
  trees_.clear();
  trees_.reserve(static_cast<size_t>(num_trees));
  for (uint64_t t = 0; t < num_trees; ++t) {
    Tree tree;
    const Status s = DeserializeTreeNodes(in, num_features_, "GBT",
                                          &Node::weight, &tree.nodes);
    if (!s.ok()) return s;
    trees_.push_back(std::move(tree));
  }
  if (!in->ok()) return Status::InvalidArgument("corrupt GBT: truncated");
  return Status::OK();
}

}  // namespace reds::ml
