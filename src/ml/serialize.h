// Kind-dispatched metamodel (de)serialization for the engine's persistent
// cache tier: one tagged little-endian payload per trained model, so a warm
// engine process reloads the models a cold one trained. All four families
// round-trip bit-exactly -- reloaded models predict identically to the
// originals. Integrity (checksums, atomic writes) lives one layer up in
// engine/persistent_cache; this layer validates structure (tags, counts,
// node indexes) so even a payload that passes the checksum cannot produce
// out-of-bounds traversals.
#ifndef REDS_ML_SERIALIZE_H_
#define REDS_ML_SERIALIZE_H_

#include <memory>

#include "ml/model.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds::ml {

/// Appends a kind tag plus the model's payload. `model` must actually be
/// the implementation class MetamodelKind names (the library's FitMetamodel
/// guarantees this).
void SerializeMetamodel(const Metamodel& model, MetamodelKind kind,
                        util::ByteWriter* out);

/// Parses a model written by SerializeMetamodel. Fails (never crashes) on
/// truncated or corrupted payloads and on a kind tag mismatch with
/// `expected_kind`.
Result<std::shared_ptr<const Metamodel>> DeserializeMetamodel(
    util::ByteReader* in, MetamodelKind expected_kind);

}  // namespace reds::ml

#endif  // REDS_ML_SERIALIZE_H_
