#include "ml/svm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace reds::ml {

namespace {

double SquaredDistance(const double* a, const double* b, int m) {
  double s = 0.0;
  for (int j = 0; j < m; ++j) {
    const double diff = a[j] - b[j];
    s += diff * diff;
  }
  return s;
}

// Median pairwise squared distance on a subsample ("sigest"-style heuristic).
double MedianHeuristicGamma(const Dataset& d, Rng* rng) {
  const int n = d.num_rows();
  const int pairs = std::min(500, n * (n - 1) / 2);
  if (pairs <= 0) return 1.0;
  std::vector<double> dist;
  dist.reserve(static_cast<size_t>(pairs));
  for (int k = 0; k < pairs; ++k) {
    const int i = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    int j = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    if (j == i) j = (j + 1) % n;
    dist.push_back(SquaredDistance(d.row(i), d.row(j), d.num_cols()));
  }
  std::nth_element(dist.begin(), dist.begin() + dist.size() / 2, dist.end());
  const double med = dist[dist.size() / 2];
  return med > 0.0 ? 1.0 / med : 1.0;
}

}  // namespace

double SvmRbf::Kernel(const double* a, const double* b) const {
  return std::exp(-gamma_ * SquaredDistance(a, b, num_features_));
}

void SvmRbf::Fit(const Dataset& d, uint64_t seed) {
  const int n = d.num_rows();
  assert(n > 0);
  num_features_ = d.num_cols();
  Rng rng(DeriveSeed(seed, 0x73766dULL));
  gamma_ = config_.gamma > 0.0 ? config_.gamma : MedianHeuristicGamma(d, &rng);

  std::vector<double> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) y[static_cast<size_t>(i)] = d.y(i) > 0.5 ? 1.0 : -1.0;

  // Precompute the kernel matrix (N <= a few thousand in this library).
  std::vector<double> kmat(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double k = std::exp(
          -gamma_ * SquaredDistance(d.row(i), d.row(j), num_features_));
      kmat[static_cast<size_t>(i) * n + j] = k;
      kmat[static_cast<size_t>(j) * n + i] = k;
    }
  }
  auto kernel_at = [&](int i, int j) {
    return kmat[static_cast<size_t>(i) * n + j];
  };

  std::vector<double> alpha(static_cast<size_t>(n), 0.0);
  double b = 0.0;
  // Incrementally maintained decision values f(k); with all alphas zero the
  // decision is just the bias.
  std::vector<double> f(static_cast<size_t>(n), 0.0);

  // Simplified SMO (Platt 1998 as in the CS229 formulation).
  const double c = config_.c;
  int passes = 0, iters = 0;
  while (passes < config_.max_passes && iters < config_.max_iters) {
    int changed = 0;
    for (int i = 0; i < n; ++i) {
      const double ei = f[static_cast<size_t>(i)] - y[static_cast<size_t>(i)];
      const double yi_ei = y[static_cast<size_t>(i)] * ei;
      if ((yi_ei < -config_.tol && alpha[static_cast<size_t>(i)] < c) ||
          (yi_ei > config_.tol && alpha[static_cast<size_t>(i)] > 0.0)) {
        int j = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n - 1)));
        if (j >= i) ++j;
        const double ej = f[static_cast<size_t>(j)] - y[static_cast<size_t>(j)];
        const double ai_old = alpha[static_cast<size_t>(i)];
        const double aj_old = alpha[static_cast<size_t>(j)];
        double lo, hi;
        if (y[static_cast<size_t>(i)] != y[static_cast<size_t>(j)]) {
          lo = std::max(0.0, aj_old - ai_old);
          hi = std::min(c, c + aj_old - ai_old);
        } else {
          lo = std::max(0.0, ai_old + aj_old - c);
          hi = std::min(c, ai_old + aj_old);
        }
        if (lo >= hi) continue;
        const double eta =
            2.0 * kernel_at(i, j) - kernel_at(i, i) - kernel_at(j, j);
        if (eta >= 0.0) continue;
        double aj = aj_old - y[static_cast<size_t>(j)] * (ei - ej) / eta;
        aj = std::clamp(aj, lo, hi);
        if (std::fabs(aj - aj_old) < 1e-6) continue;
        const double ai = ai_old + y[static_cast<size_t>(i)] *
                                       y[static_cast<size_t>(j)] *
                                       (aj_old - aj);
        alpha[static_cast<size_t>(i)] = ai;
        alpha[static_cast<size_t>(j)] = aj;
        const double b1 = b - ei -
                          y[static_cast<size_t>(i)] * (ai - ai_old) * kernel_at(i, i) -
                          y[static_cast<size_t>(j)] * (aj - aj_old) * kernel_at(i, j);
        const double b2 = b - ej -
                          y[static_cast<size_t>(i)] * (ai - ai_old) * kernel_at(i, j) -
                          y[static_cast<size_t>(j)] * (aj - aj_old) * kernel_at(j, j);
        double b_new;
        if (ai > 0.0 && ai < c) {
          b_new = b1;
        } else if (aj > 0.0 && aj < c) {
          b_new = b2;
        } else {
          b_new = 0.5 * (b1 + b2);
        }
        // Propagate the alpha/bias deltas to the cached decisions.
        const double di = y[static_cast<size_t>(i)] * (ai - ai_old);
        const double dj = y[static_cast<size_t>(j)] * (aj - aj_old);
        const double db = b_new - b;
        for (int k = 0; k < n; ++k) {
          f[static_cast<size_t>(k)] +=
              di * kernel_at(i, k) + dj * kernel_at(j, k) + db;
        }
        b = b_new;
        ++changed;
      }
    }
    ++iters;
    passes = changed == 0 ? passes + 1 : 0;
  }

  // Keep only the support vectors.
  sv_x_.clear();
  sv_coef_.clear();
  for (int i = 0; i < n; ++i) {
    if (alpha[static_cast<size_t>(i)] > 1e-12) {
      sv_x_.emplace_back(d.row(i), d.row(i) + num_features_);
      sv_coef_.push_back(alpha[static_cast<size_t>(i)] * y[static_cast<size_t>(i)]);
    }
  }
  bias_ = b;
}

double SvmRbf::Decision(const double* x) const {
  double s = bias_;
  for (size_t i = 0; i < sv_x_.size(); ++i) {
    s += sv_coef_[i] * Kernel(sv_x_[i].data(), x);
  }
  return s;
}

double SvmRbf::PredictProb(const double* x) const {
  // Monotone squashing keeps the bnd=0 decision boundary at probability 0.5.
  return 1.0 / (1.0 + std::exp(-3.0 * Decision(x)));
}

void SvmRbf::SerializeTo(util::ByteWriter* out) const {
  out->I32(num_features_);
  out->F64(gamma_);
  out->F64(bias_);
  out->U64(sv_x_.size());
  for (const std::vector<double>& sv : sv_x_) out->VecF64(sv);
  out->VecF64(sv_coef_);
}

Status SvmRbf::DeserializeFrom(util::ByteReader* in) {
  num_features_ = in->I32();
  gamma_ = in->F64();
  bias_ = in->F64();
  const uint64_t num_sv = in->U64();
  if (!in->ok() || num_features_ <= 0 || num_sv > in->remaining() / 8) {
    return Status::InvalidArgument("corrupt SVM: header");
  }
  sv_x_.assign(static_cast<size_t>(num_sv), {});
  for (std::vector<double>& sv : sv_x_) {
    sv = in->VecF64();
    if (!in->ok() || sv.size() != static_cast<size_t>(num_features_)) {
      return Status::InvalidArgument("corrupt SVM: support vector");
    }
  }
  sv_coef_ = in->VecF64();
  if (!in->ok() || sv_coef_.size() != sv_x_.size()) {
    return Status::InvalidArgument("corrupt SVM: coefficients");
  }
  return Status::OK();
}

}  // namespace reds::ml
