#include "ml/tuning.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace reds::ml {

std::vector<int> FoldAssignment(int n, int k, uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0xf01d5ULL));
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(&perm);
  std::vector<int> fold(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    fold[static_cast<size_t>(perm[static_cast<size_t>(i)])] = i % k;
  }
  return fold;
}

namespace {

using ModelFactory = std::function<std::unique_ptr<Metamodel>()>;

// Row-id views of one CV fold: the ascending training rows and the
// held-out rows. The streamed plan fits candidates through these plus the
// shared full-data indexes; the materialized plan copies `train_rows` into
// a fold dataset.
struct CvFoldRows {
  std::vector<int> train_rows;
  std::vector<int> test_rows;
};

// The fold membership is computed once per tuning run so every grid
// candidate is scored on identical folds (caret's protocol). Degenerate
// folds (empty train or test side) are dropped, matching the historical
// materialized behavior.
std::vector<CvFoldRows> BuildFoldRows(int n, int folds, uint64_t seed) {
  const std::vector<int> fold = FoldAssignment(n, folds, seed);
  std::vector<CvFoldRows> out;
  for (int f = 0; f < folds; ++f) {
    CvFoldRows rows;
    for (int i = 0; i < n; ++i) {
      (fold[static_cast<size_t>(i)] == f ? rows.test_rows : rows.train_rows)
          .push_back(i);
    }
    if (rows.train_rows.empty() || rows.test_rows.empty()) continue;
    out.push_back(std::move(rows));
  }
  return out;
}

// One materialized CV fold: the copied training subset and its columnar
// (and, under the histogram backend, binned) views shared by every grid
// candidate fit on the fold. Reference plan only -- residency scales with
// k fold-matrix copies.
struct CvFold {
  Dataset train;
  std::vector<int> test_rows;
  std::shared_ptr<const ColumnIndex> index;
  std::shared_ptr<const BinnedIndex> binned;
};

std::vector<CvFold> BuildCvFolds(const Dataset& d, int folds, uint64_t seed,
                                 SplitBackend backend, bool tree_family) {
  std::vector<CvFold> out;
  for (CvFoldRows& rows : BuildFoldRows(d.num_rows(), folds, seed)) {
    CvFold cv;
    cv.train = d.SubsetRows(rows.train_rows);
    cv.test_rows = std::move(rows.test_rows);
    if (tree_family) {
      cv.index = ColumnIndex::Build(cv.train);
      if (backend == SplitBackend::kHistogram) {
        cv.binned = BinnedIndex::Build(*cv.index);
      }
    }
    out.push_back(std::move(cv));
  }
  return out;
}

// Mean held-out log-loss over the fitted per-fold models. `fit_fold`
// returns the model for fold f; scoring (and the per-fold seed stream) is
// shared by both fold plans so their losses can only differ through the
// fits themselves.
double FoldLoss(const Dataset& d, size_t num_built, int num_folds,
                const std::function<std::unique_ptr<Metamodel>(size_t)>& fit_fold,
                const std::function<const std::vector<int>&(size_t)>& test_rows) {
  double total = 0.0;
  for (size_t f = 0; f < num_built; ++f) {
    const std::unique_ptr<Metamodel> model = fit_fold(f);
    const std::vector<int>& held_out = test_rows(f);
    std::vector<double> prob, y;
    prob.reserve(held_out.size());
    y.reserve(held_out.size());
    for (int r : held_out) {
      prob.push_back(model->PredictProb(d.row(r)));
      y.push_back(d.y(r) > 0.5 ? 1.0 : 0.0);
    }
    total += LogLoss(prob, y);
  }
  return total / num_folds;
}

// Mean CV log-loss of a candidate on the materialized folds.
double CrossValidate(const ModelFactory& factory, const Dataset& d,
                     const std::vector<CvFold>& folds, int num_folds,
                     uint64_t seed) {
  return FoldLoss(
      d, folds.size(), num_folds,
      [&](size_t f) {
        auto model = factory();
        model->Fit(folds[f].train,
                   DeriveSeed(seed, static_cast<uint64_t>(f) + 101),
                   folds[f].index.get(), folds[f].binned.get());
        return model;
      },
      [&](size_t f) -> const std::vector<int>& { return folds[f].test_rows; });
}

// Mean CV log-loss of a candidate fit through per-fold row views over the
// shared full-data indexes: nothing fold-sized is ever copied, so peak
// tuning residency is the one transient fit working set, not k fold
// matrices. Bit-identical to CrossValidate wherever FitOnRows is (see
// ml/model.h).
double CrossValidateStreamed(const ModelFactory& factory, const Dataset& d,
                             const std::vector<CvFoldRows>& folds,
                             int num_folds, uint64_t seed,
                             const ColumnIndex* index,
                             const BinnedIndex* binned) {
  return FoldLoss(
      d, folds.size(), num_folds,
      [&](size_t f) {
        auto model = factory();
        model->FitOnRows(d, folds[f].train_rows,
                         DeriveSeed(seed, static_cast<uint64_t>(f) + 101),
                         index, binned);
        return model;
      },
      [&](size_t f) -> const std::vector<int>& { return folds[f].test_rows; });
}

std::unique_ptr<Metamodel> PickBest(const std::vector<ModelFactory>& grid,
                                    const Dataset& d, uint64_t seed,
                                    const TuningConfig& config,
                                    bool tree_family,
                                    const ColumnIndex* index,
                                    const BinnedIndex* binned) {
  const bool streamed = config.fold_plan == CvFoldPlan::kStreamed;
  std::vector<CvFoldRows> fold_rows;
  std::vector<CvFold> folds;
  std::shared_ptr<const ColumnIndex> owned_index;
  std::shared_ptr<const BinnedIndex> owned_binned;
  if (streamed) {
    fold_rows = BuildFoldRows(d.num_rows(), config.folds, seed);
    if (tree_family) {
      // One full-data view pair serves every fold of every candidate
      // (reusing the caller's prebuilt indexes when given). Building the
      // full index here is still strictly smaller than the materialized
      // plan's k fold indexes of ~(k-1)/k rows each.
      if (index == nullptr) {
        owned_index = ColumnIndex::Build(d);
        index = owned_index.get();
      }
      if (config.backend == SplitBackend::kHistogram && binned == nullptr) {
        owned_binned = BinnedIndex::Build(*index);
        binned = owned_binned.get();
      }
    }
  } else {
    folds = BuildCvFolds(d, config.folds, seed, config.backend, tree_family);
  }
  double best_loss = std::numeric_limits<double>::infinity();
  size_t best = 0;
  for (size_t g = 0; g < grid.size(); ++g) {
    const uint64_t g_seed = DeriveSeed(seed, static_cast<uint64_t>(g));
    const double loss =
        streamed ? CrossValidateStreamed(grid[g], d, fold_rows, config.folds,
                                         g_seed, index, binned)
                 : CrossValidate(grid[g], d, folds, config.folds, g_seed);
    if (loss < best_loss) {
      best_loss = loss;
      best = g;
    }
  }
  auto model = grid[best]();
  // The winner refits on all of d; passing the shared full-data views is
  // bit-identical to letting Fit build its own (they are constructed the
  // same way), so the refit matches across fold plans.
  model->Fit(d, DeriveSeed(seed, 0xf17ULL), index, binned);
  return model;
}

int DefaultMtry(int m) {
  return std::max(1, static_cast<int>(std::sqrt(static_cast<double>(m))));
}

// The deterministic grid enumeration shared by TuneAndFit and the
// per-cell API (TuningGridSize/TuningCellLoss/TuningCellFit). Cell order
// is part of the contract: a sharded tuner that evaluates cells remotely
// and argmins first-wins in cell index order reproduces PickBest exactly.
std::vector<ModelFactory> BuildTuningGrid(MetamodelKind kind, int m,
                                          const TuningConfig& config) {
  const bool full = config.budget == TuningBudget::kFull;
  std::vector<ModelFactory> grid;
  switch (kind) {
    case MetamodelKind::kRandomForest: {
      std::vector<int> mtry_grid = {DefaultMtry(m), std::max(1, m / 3),
                                    std::max(1, 2 * m / 3)};
      std::sort(mtry_grid.begin(), mtry_grid.end());
      mtry_grid.erase(std::unique(mtry_grid.begin(), mtry_grid.end()),
                      mtry_grid.end());
      for (int mtry : mtry_grid) {
        RandomForestConfig c;
        c.num_trees = full ? 500 : 100;
        c.mtry = mtry;
        c.backend = config.backend;
        c.growth = config.growth;
        c.max_leaves = config.max_leaves;
        grid.push_back([c] { return std::make_unique<RandomForest>(c); });
      }
      break;
    }
    case MetamodelKind::kGbt: {
      const std::vector<int> depths = full ? std::vector<int>{2, 4, 6}
                                           : std::vector<int>{2, 4};
      const std::vector<int> rounds = full ? std::vector<int>{50, 150}
                                           : std::vector<int>{50, 100};
      const std::vector<double> etas = full ? std::vector<double>{0.1, 0.3}
                                            : std::vector<double>{0.3};
      for (int depth : depths) {
        for (int nr : rounds) {
          for (double eta : etas) {
            GbtConfig c;
            c.max_depth = depth;
            c.num_rounds = nr;
            c.eta = eta;
            c.backend = config.backend;
            c.growth = config.growth;
            c.max_leaves = config.max_leaves;
            grid.push_back(
                [c] { return std::make_unique<GradientBoostedTrees>(c); });
          }
        }
      }
      break;
    }
    case MetamodelKind::kSvm: {
      const std::vector<double> cs =
          full ? std::vector<double>{0.25, 1.0, 4.0, 16.0}
               : std::vector<double>{1.0, 4.0};
      for (double c_val : cs) {
        SvmConfig c;
        c.c = c_val;
        grid.push_back([c] { return std::make_unique<SvmRbf>(c); });
      }
      break;
    }
  }
  return grid;
}

}  // namespace

std::unique_ptr<Metamodel> FitDefault(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed, TuningBudget budget,
                                      const ColumnIndex* index,
                                      const BinnedIndex* binned,
                                      SplitBackend backend,
                                      GrowthPolicy growth, int max_leaves) {
  const bool full = budget == TuningBudget::kFull;
  switch (kind) {
    case MetamodelKind::kRandomForest: {
      RandomForestConfig config;
      config.num_trees = full ? 500 : 100;
      config.backend = backend;
      config.growth = growth;
      config.max_leaves = max_leaves;
      auto model = std::make_unique<RandomForest>(config);
      model->Fit(d, seed, index, binned);
      return model;
    }
    case MetamodelKind::kGbt: {
      GbtConfig config;
      config.num_rounds = full ? 150 : 80;
      config.max_depth = 4;
      config.eta = 0.3;
      config.backend = backend;
      config.growth = growth;
      config.max_leaves = max_leaves;
      auto model = std::make_unique<GradientBoostedTrees>(config);
      model->Fit(d, seed, index, binned);
      return model;
    }
    case MetamodelKind::kSvm: {
      SvmConfig config;
      auto model = std::make_unique<SvmRbf>(config);
      model->Fit(d, seed);
      return model;
    }
  }
  return nullptr;
}

std::unique_ptr<Metamodel> TuneAndFit(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      const TuningConfig& config,
                                      const ColumnIndex* index,
                                      const BinnedIndex* binned) {
  obs::Span span("metamodel.tune");
  const std::vector<ModelFactory> grid =
      BuildTuningGrid(kind, d.num_cols(), config);
  return PickBest(grid, d, seed, config, kind != MetamodelKind::kSvm, index,
                  binned);
}

int TuningGridSize(MetamodelKind kind, int num_features,
                   const TuningConfig& config) {
  return static_cast<int>(BuildTuningGrid(kind, num_features, config).size());
}

double TuningCellLoss(MetamodelKind kind, int cell, const Dataset& d,
                      uint64_t seed, const TuningConfig& config,
                      const ColumnIndex* index, const BinnedIndex* binned) {
  const std::vector<ModelFactory> grid =
      BuildTuningGrid(kind, d.num_cols(), config);
  const bool tree_family = kind != MetamodelKind::kSvm;
  const std::vector<CvFoldRows> fold_rows =
      BuildFoldRows(d.num_rows(), config.folds, seed);
  std::shared_ptr<const ColumnIndex> owned_index;
  std::shared_ptr<const BinnedIndex> owned_binned;
  if (tree_family) {
    if (index == nullptr) {
      owned_index = ColumnIndex::Build(d);
      index = owned_index.get();
    }
    if (config.backend == SplitBackend::kHistogram && binned == nullptr) {
      owned_binned = BinnedIndex::Build(*index);
      binned = owned_binned.get();
    }
  }
  // Same per-cell seed stream as PickBest's grid loop, so a cell's loss is
  // the same whether it is evaluated here (a shard worker) or inline.
  return CrossValidateStreamed(grid[static_cast<size_t>(cell)], d, fold_rows,
                               config.folds,
                               DeriveSeed(seed, static_cast<uint64_t>(cell)),
                               index, binned);
}

std::unique_ptr<Metamodel> TuningCellFit(MetamodelKind kind, int cell,
                                         const Dataset& d, uint64_t seed,
                                         const TuningConfig& config,
                                         const ColumnIndex* index,
                                         const BinnedIndex* binned) {
  const std::vector<ModelFactory> grid =
      BuildTuningGrid(kind, d.num_cols(), config);
  auto model = grid[static_cast<size_t>(cell)]();
  model->Fit(d, DeriveSeed(seed, 0xf17ULL), index, binned);
  return model;
}

std::unique_ptr<Metamodel> FitMetamodel(MetamodelKind kind, const Dataset& d,
                                        uint64_t seed, bool tune,
                                        TuningBudget budget,
                                        const ColumnIndex* index,
                                        const BinnedIndex* binned,
                                        SplitBackend backend,
                                        GrowthPolicy growth, int max_leaves) {
  if (tune) {
    TuningConfig config;
    config.budget = budget;
    config.backend = backend;
    config.growth = growth;
    config.max_leaves = max_leaves;
    return TuneAndFit(kind, d, seed, config, index, binned);
  }
  return FitDefault(kind, d, seed, budget, index, binned, backend, growth,
                    max_leaves);
}

}  // namespace reds::ml
