#include "ml/tuning.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace reds::ml {

std::vector<int> FoldAssignment(int n, int k, uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0xf01d5ULL));
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(&perm);
  std::vector<int> fold(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    fold[static_cast<size_t>(perm[static_cast<size_t>(i)])] = i % k;
  }
  return fold;
}

namespace {

using ModelFactory = std::function<std::unique_ptr<Metamodel>()>;

// One CV fold, prepared once per tuning run: the training subset, the
// held-out row ids, and the subset's columnar (and, under the histogram
// backend, binned) views shared by every grid candidate fit on the fold.
struct CvFold {
  Dataset train;
  std::vector<int> test_rows;
  std::shared_ptr<const ColumnIndex> index;
  std::shared_ptr<const BinnedIndex> binned;
};

// Builds the fold datasets and their indexes. The fold membership mask,
// subset copies, and per-fold views used to be re-derived for every grid
// point; sharing them also means every candidate is scored on identical
// folds (caret's protocol), making the grid comparison apples-to-apples.
std::vector<CvFold> BuildCvFolds(const Dataset& d, int folds, uint64_t seed,
                                 SplitBackend backend, bool tree_family) {
  const int n = d.num_rows();
  const std::vector<int> fold = FoldAssignment(n, folds, seed);
  std::vector<CvFold> out;
  for (int f = 0; f < folds; ++f) {
    CvFold cv;
    std::vector<int> train_rows;
    for (int i = 0; i < n; ++i) {
      (fold[static_cast<size_t>(i)] == f ? cv.test_rows : train_rows)
          .push_back(i);
    }
    if (train_rows.empty() || cv.test_rows.empty()) continue;
    cv.train = d.SubsetRows(train_rows);
    if (tree_family) {
      cv.index = ColumnIndex::Build(cv.train);
      if (backend == SplitBackend::kHistogram) {
        cv.binned = BinnedIndex::Build(*cv.index);
      }
    }
    out.push_back(std::move(cv));
  }
  return out;
}

// Mean CV log-loss of a model configuration over the shared folds.
double CrossValidate(const ModelFactory& factory, const Dataset& d,
                     const std::vector<CvFold>& folds, int num_folds,
                     uint64_t seed) {
  double total = 0.0;
  for (size_t f = 0; f < folds.size(); ++f) {
    const CvFold& cv = folds[f];
    auto model = factory();
    model->Fit(cv.train, DeriveSeed(seed, static_cast<uint64_t>(f) + 101),
               cv.index.get(), cv.binned.get());
    std::vector<double> prob, y;
    prob.reserve(cv.test_rows.size());
    y.reserve(cv.test_rows.size());
    for (int r : cv.test_rows) {
      prob.push_back(model->PredictProb(d.row(r)));
      y.push_back(d.y(r) > 0.5 ? 1.0 : 0.0);
    }
    total += LogLoss(prob, y);
  }
  return total / num_folds;
}

std::unique_ptr<Metamodel> PickBest(const std::vector<ModelFactory>& grid,
                                    const Dataset& d, uint64_t seed,
                                    const TuningConfig& config,
                                    bool tree_family) {
  const std::vector<CvFold> folds =
      BuildCvFolds(d, config.folds, seed, config.backend, tree_family);
  double best_loss = std::numeric_limits<double>::infinity();
  size_t best = 0;
  for (size_t g = 0; g < grid.size(); ++g) {
    const double loss = CrossValidate(grid[g], d, folds, config.folds,
                                      DeriveSeed(seed, static_cast<uint64_t>(g)));
    if (loss < best_loss) {
      best_loss = loss;
      best = g;
    }
  }
  auto model = grid[best]();
  model->Fit(d, DeriveSeed(seed, 0xf17ULL));
  return model;
}

int DefaultMtry(int m) {
  return std::max(1, static_cast<int>(std::sqrt(static_cast<double>(m))));
}

}  // namespace

std::unique_ptr<Metamodel> FitDefault(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed, TuningBudget budget,
                                      const ColumnIndex* index,
                                      const BinnedIndex* binned,
                                      SplitBackend backend) {
  const bool full = budget == TuningBudget::kFull;
  switch (kind) {
    case MetamodelKind::kRandomForest: {
      RandomForestConfig config;
      config.num_trees = full ? 500 : 100;
      config.backend = backend;
      auto model = std::make_unique<RandomForest>(config);
      model->Fit(d, seed, index, binned);
      return model;
    }
    case MetamodelKind::kGbt: {
      GbtConfig config;
      config.num_rounds = full ? 150 : 80;
      config.max_depth = 4;
      config.eta = 0.3;
      config.backend = backend;
      auto model = std::make_unique<GradientBoostedTrees>(config);
      model->Fit(d, seed, index, binned);
      return model;
    }
    case MetamodelKind::kSvm: {
      SvmConfig config;
      auto model = std::make_unique<SvmRbf>(config);
      model->Fit(d, seed);
      return model;
    }
  }
  return nullptr;
}

std::unique_ptr<Metamodel> TuneAndFit(MetamodelKind kind, const Dataset& d,
                                      uint64_t seed,
                                      const TuningConfig& config) {
  obs::Span span("metamodel.tune");
  const bool full = config.budget == TuningBudget::kFull;
  const int m = d.num_cols();
  std::vector<ModelFactory> grid;
  switch (kind) {
    case MetamodelKind::kRandomForest: {
      std::vector<int> mtry_grid = {DefaultMtry(m), std::max(1, m / 3),
                                    std::max(1, 2 * m / 3)};
      std::sort(mtry_grid.begin(), mtry_grid.end());
      mtry_grid.erase(std::unique(mtry_grid.begin(), mtry_grid.end()),
                      mtry_grid.end());
      for (int mtry : mtry_grid) {
        RandomForestConfig c;
        c.num_trees = full ? 500 : 100;
        c.mtry = mtry;
        c.backend = config.backend;
        grid.push_back([c] { return std::make_unique<RandomForest>(c); });
      }
      break;
    }
    case MetamodelKind::kGbt: {
      const std::vector<int> depths = full ? std::vector<int>{2, 4, 6}
                                           : std::vector<int>{2, 4};
      const std::vector<int> rounds = full ? std::vector<int>{50, 150}
                                           : std::vector<int>{50, 100};
      const std::vector<double> etas = full ? std::vector<double>{0.1, 0.3}
                                            : std::vector<double>{0.3};
      for (int depth : depths) {
        for (int nr : rounds) {
          for (double eta : etas) {
            GbtConfig c;
            c.max_depth = depth;
            c.num_rounds = nr;
            c.eta = eta;
            c.backend = config.backend;
            grid.push_back(
                [c] { return std::make_unique<GradientBoostedTrees>(c); });
          }
        }
      }
      break;
    }
    case MetamodelKind::kSvm: {
      const std::vector<double> cs =
          full ? std::vector<double>{0.25, 1.0, 4.0, 16.0}
               : std::vector<double>{1.0, 4.0};
      for (double c_val : cs) {
        SvmConfig c;
        c.c = c_val;
        grid.push_back([c] { return std::make_unique<SvmRbf>(c); });
      }
      break;
    }
  }
  return PickBest(grid, d, seed, config, kind != MetamodelKind::kSvm);
}

std::unique_ptr<Metamodel> FitMetamodel(MetamodelKind kind, const Dataset& d,
                                        uint64_t seed, bool tune,
                                        TuningBudget budget,
                                        const ColumnIndex* index,
                                        const BinnedIndex* binned,
                                        SplitBackend backend) {
  if (tune) {
    TuningConfig config;
    config.budget = budget;
    config.backend = backend;
    return TuneAndFit(kind, d, seed, config);
  }
  return FitDefault(kind, d, seed, budget, index, binned, backend);
}

}  // namespace reds::ml
