// Shared presorted split-search utilities for the tree learners. When a
// node splits, every per-feature value-sorted index array must be
// partitioned stably by the left/right membership mask so each child's
// segment stays value-sorted; and large nodes may search their candidate
// features in parallel with a deterministic merge. CART works on position
// arrays, GBT on row-id arrays; both loops are identical.
#ifndef REDS_ML_ORDER_PARTITION_H_
#define REDS_ML_ORDER_PARTITION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace reds::ml {

/// Nodes smaller than this are searched serially even when a pool exists:
/// the dispatch overhead dominates the per-feature scan below it.
inline constexpr int kParallelNodeMin = 4096;

/// Stably partitions segment [begin, end) of every array in `orders` so
/// entries with goes_left[entry] != 0 precede the rest, preserving relative
/// order on both sides. `scratch` must hold at least end - begin ints.
inline void StablePartitionOrders(std::vector<std::vector<int>>* orders,
                                  int begin, int end,
                                  const std::vector<uint8_t>& goes_left,
                                  std::vector<int>* scratch) {
  for (std::vector<int>& ord : *orders) {
    int write = begin;
    int spill = 0;
    for (int i = begin; i < end; ++i) {
      const int entry = ord[static_cast<size_t>(i)];
      if (goes_left[static_cast<size_t>(entry)]) {
        ord[static_cast<size_t>(write++)] = entry;
      } else {
        (*scratch)[static_cast<size_t>(spill++)] = entry;
      }
    }
    std::copy(scratch->begin(), scratch->begin() + spill, ord.begin() + write);
  }
}

/// Runs search(fi) for fi in [0, num_candidates) — on `pool` when the node
/// is large enough, serially otherwise — and merges the per-candidate bests
/// in candidate order with a strict `gain >` comparison, so the winner is
/// the same as the serial loop's. Candidate needs `int feature` (< 0 =
/// none) and `double gain` members.
template <typename Candidate, typename SearchFn>
Candidate BestSplitOverFeatures(ThreadPool* pool, size_t num_candidates,
                                int node_size, const SearchFn& search) {
  Candidate best;
  if (pool != nullptr && node_size >= kParallelNodeMin && num_candidates > 1) {
    std::vector<Candidate> per_feature(num_candidates);
    for (size_t fi = 0; fi < num_candidates; ++fi) {
      pool->Submit([&per_feature, &search, fi] {
        per_feature[fi] = search(fi);
      });
    }
    pool->Wait();
    for (const Candidate& cand : per_feature) {
      if (cand.feature >= 0 && cand.gain > best.gain) best = cand;
    }
  } else {
    for (size_t fi = 0; fi < num_candidates; ++fi) {
      const Candidate cand = search(fi);
      if (cand.feature >= 0 && cand.gain > best.gain) best = cand;
    }
  }
  return best;
}

}  // namespace reds::ml

#endif  // REDS_ML_ORDER_PARTITION_H_
