#include "ml/histogram.h"

#include <algorithm>

namespace reds::ml {

const char* SplitBackendName(SplitBackend backend) {
  switch (backend) {
    case SplitBackend::kExact:
      return "exact";
    case SplitBackend::kPresorted:
      return "presorted";
    case SplitBackend::kHistogram:
      return "histogram";
  }
  return "?";
}

void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, HistBin* bins) {
  for (int i = 0; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    ++bin.count;
  }
}

void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, const double* h,
                                  HistBin* bins) {
  for (int i = 0; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    bin.h += h[id];
    ++bin.count;
  }
}

void SubtractHistogram(const HistBin* parent, const HistBin* child,
                       HistBin* out, int num_bins) {
  for (int b = 0; b < num_bins; ++b) {
    out[b].g = parent[b].g - child[b].g;
    out[b].h = parent[b].h - child[b].h;
    out[b].count = parent[b].count - child[b].count;
  }
}

std::vector<HistBin> HistogramPool::Acquire() {
  if (free_.empty()) return std::vector<HistBin>(buffer_size_);
  std::vector<HistBin> buffer = std::move(free_.back());
  free_.pop_back();
  return buffer;
}

void HistogramPool::Release(std::vector<HistBin> buffer) {
  free_.push_back(std::move(buffer));
}

}  // namespace reds::ml
