#include "ml/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/simd.h"

namespace reds::ml {

const char* SplitBackendName(SplitBackend backend) {
  switch (backend) {
    case SplitBackend::kExact:
      return "exact";
    case SplitBackend::kPresorted:
      return "presorted";
    case SplitBackend::kHistogram:
      return "histogram";
  }
  return "?";
}

const char* GrowthPolicyName(GrowthPolicy growth) {
  switch (growth) {
    case GrowthPolicy::kDepthWise:
      return "depthwise";
    case GrowthPolicy::kLeafWise:
      return "leafwise";
  }
  return "?";
}

namespace {

// Scalar kernels: the 4-row unrolled gathers (formerly inline in the
// header). All loads of an unrolled group are issued before any bin is
// bumped so the dependent load chains pipeline; bumps stay in row order
// for bit-identity with the plain reference loop.

void AccumulateHistogramScalar(const uint8_t* codes, const int* ids, int n,
                               const double* g, HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const double g0 = g[id0], g1 = g[id1], g2 = g[id2], g3 = g[id3];
    bins[c0].g += g0;
    ++bins[c0].count;
    bins[c1].g += g1;
    ++bins[c1].count;
    bins[c2].g += g2;
    ++bins[c2].count;
    bins[c3].g += g3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    ++bin.count;
  }
}

void AccumulateHistogramScalar(const uint8_t* codes, const int* ids, int n,
                               const double* g, const double* h,
                               HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const double g0 = g[id0], g1 = g[id1], g2 = g[id2], g3 = g[id3];
    const double h0 = h[id0], h1 = h[id1], h2 = h[id2], h3 = h[id3];
    bins[c0].g += g0;
    bins[c0].h += h0;
    ++bins[c0].count;
    bins[c1].g += g1;
    bins[c1].h += h1;
    ++bins[c1].count;
    bins[c2].g += g2;
    bins[c2].h += h2;
    ++bins[c2].count;
    bins[c3].g += g3;
    bins[c3].h += h3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    bin.h += h[id];
    ++bin.count;
  }
}

void AccumulateHistogramPairsScalar(const uint8_t* codes, const int* ids,
                                    int n, const double* gh, HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const double g0 = gh[2 * id0], h0 = gh[2 * id0 + 1];
    const double g1 = gh[2 * id1], h1 = gh[2 * id1 + 1];
    const double g2 = gh[2 * id2], h2 = gh[2 * id2 + 1];
    const double g3 = gh[2 * id3], h3 = gh[2 * id3 + 1];
    bins[c0].g += g0;
    bins[c0].h += h0;
    ++bins[c0].count;
    bins[c1].g += g1;
    bins[c1].h += h1;
    ++bins[c1].count;
    bins[c2].g += g2;
    bins[c2].h += h2;
    ++bins[c2].count;
    bins[c3].g += g3;
    bins[c3].h += h3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += gh[2 * id];
    bin.h += gh[2 * id + 1];
    ++bin.count;
  }
}

void AccumulateHistogramQ16Scalar(const uint8_t* codes, const int* ids, int n,
                                  const int16_t* gh16, HistBinQ16* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const int16_t g0 = gh16[2 * id0], h0 = gh16[2 * id0 + 1];
    const int16_t g1 = gh16[2 * id1], h1 = gh16[2 * id1 + 1];
    const int16_t g2 = gh16[2 * id2], h2 = gh16[2 * id2 + 1];
    const int16_t g3 = gh16[2 * id3], h3 = gh16[2 * id3 + 1];
    bins[c0].g += g0;
    bins[c0].h += h0;
    ++bins[c0].count;
    bins[c1].g += g1;
    bins[c1].h += h1;
    ++bins[c1].count;
    bins[c2].g += g2;
    bins[c2].h += h2;
    ++bins[c2].count;
    bins[c3].g += g3;
    bins[c3].h += h3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBinQ16& bin = bins[codes[id]];
    bin.g += gh16[2 * id];
    bin.h += gh16[2 * id + 1];
    ++bin.count;
  }
}

}  // namespace

#if defined(REDS_HAVE_AVX2)
// AVX2 bodies, compiled with -mavx2 in histogram_avx2.cc.
void AccumulateHistogramAvx2(const uint8_t* codes, const int* ids, int n,
                             const double* g, HistBin* bins);
void AccumulateHistogramAvx2(const uint8_t* codes, const int* ids, int n,
                             const double* g, const double* h, HistBin* bins);
void AccumulateHistogramPairsAvx2(const uint8_t* codes, const int* ids, int n,
                                  const double* gh, HistBin* bins);
void AccumulateHistogramQ16Avx2(const uint8_t* codes, const int* ids, int n,
                                const int16_t* gh16, HistBinQ16* bins);
#endif

void AccumulateHistogram(const uint8_t* codes, const int* ids, int n,
                         const double* g, HistBin* bins) {
#if defined(REDS_HAVE_AVX2)
  if (util::ActiveSimdLevel() == util::SimdLevel::kAvx2) {
    AccumulateHistogramAvx2(codes, ids, n, g, bins);
    return;
  }
#endif
  AccumulateHistogramScalar(codes, ids, n, g, bins);
}

void AccumulateHistogram(const uint8_t* codes, const int* ids, int n,
                         const double* g, const double* h, HistBin* bins) {
#if defined(REDS_HAVE_AVX2)
  if (util::ActiveSimdLevel() == util::SimdLevel::kAvx2) {
    AccumulateHistogramAvx2(codes, ids, n, g, h, bins);
    return;
  }
#endif
  AccumulateHistogramScalar(codes, ids, n, g, h, bins);
}

void AccumulateHistogramPairs(const uint8_t* codes, const int* ids, int n,
                              const double* gh, HistBin* bins) {
#if defined(REDS_HAVE_AVX2)
  if (util::ActiveSimdLevel() == util::SimdLevel::kAvx2) {
    AccumulateHistogramPairsAvx2(codes, ids, n, gh, bins);
    return;
  }
#endif
  AccumulateHistogramPairsScalar(codes, ids, n, gh, bins);
}

void AccumulateHistogramQ16(const uint8_t* codes, const int* ids, int n,
                            const int16_t* gh16, HistBinQ16* bins) {
#if defined(REDS_HAVE_AVX2)
  if (util::ActiveSimdLevel() == util::SimdLevel::kAvx2) {
    AccumulateHistogramQ16Avx2(codes, ids, n, gh16, bins);
    return;
  }
#endif
  AccumulateHistogramQ16Scalar(codes, ids, n, gh16, bins);
}

void PackGradientPairs(const double* g, const double* h, int n,
                       util::PackedDoubleBuffer* out) {
  out->Resize(static_cast<size_t>(n) * 2);
  double* gh = out->data();
  for (int i = 0; i < n; ++i) {
    gh[2 * i] = g[i];
    gh[2 * i + 1] = h[i];
  }
}

double QuantizeGradientPairs(const double* g, const double* h, int n,
                             int16_t* gh16) {
  double max_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::abs(g[i]));
    max_abs = std::max(max_abs, std::abs(h[i]));
  }
  const double scale = max_abs > 0.0 ? max_abs / 32767.0 : 1.0;
  const double inv = 1.0 / scale;
  for (int i = 0; i < n; ++i) {
    gh16[2 * i] = static_cast<int16_t>(std::lrint(g[i] * inv));
    gh16[2 * i + 1] = static_cast<int16_t>(std::lrint(h[i] * inv));
  }
  return scale;
}

void AccumulateHistogramQ16Reference(const uint8_t* codes, const int* ids,
                                     int n, const int16_t* gh16,
                                     HistBinQ16* bins) {
  for (int i = 0; i < n; ++i) {
    const int id = ids[i];
    HistBinQ16& bin = bins[codes[id]];
    bin.g += gh16[2 * id];
    bin.h += gh16[2 * id + 1];
    ++bin.count;
  }
}

void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, HistBin* bins) {
  for (int i = 0; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    ++bin.count;
  }
}

void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, const double* h,
                                  HistBin* bins) {
  for (int i = 0; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    bin.h += h[id];
    ++bin.count;
  }
}

void SubtractHistogram(const HistBin* parent, const HistBin* child,
                       HistBin* out, int num_bins) {
  for (int b = 0; b < num_bins; ++b) {
    out[b].g = parent[b].g - child[b].g;
    out[b].h = parent[b].h - child[b].h;
    out[b].count = parent[b].count - child[b].count;
  }
}

void MergeHistogram(HistBin* out, const HistBin* other, int num_bins) {
  for (int b = 0; b < num_bins; ++b) {
    out[b].g += other[b].g;
    out[b].h += other[b].h;
    out[b].count += other[b].count;
  }
}

void SerializeHistogram(const HistBin* bins, int num_bins,
                        util::ByteWriter* out) {
  out->I32(num_bins);
  for (int b = 0; b < num_bins; ++b) {
    out->F64(bins[b].g);
    out->F64(bins[b].h);
    out->I32(bins[b].count);
  }
}

bool DeserializeHistogram(util::ByteReader* in, HistBin* bins, int num_bins) {
  if (in->I32() != num_bins) return false;
  for (int b = 0; b < num_bins; ++b) {
    bins[b].g = in->F64();
    bins[b].h = in->F64();
    bins[b].count = in->I32();
  }
  return in->ok();
}

std::vector<HistBin> HistogramPool::Acquire() {
  if (free_.empty()) return std::vector<HistBin>(buffer_size_);
  std::vector<HistBin> buffer = std::move(free_.back());
  free_.pop_back();
  return buffer;
}

void HistogramPool::Release(std::vector<HistBin> buffer) {
  free_.push_back(std::move(buffer));
}

}  // namespace reds::ml
