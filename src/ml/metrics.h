// Classification metrics used by metamodel tuning and tests.
#ifndef REDS_ML_METRICS_H_
#define REDS_ML_METRICS_H_

#include <vector>

namespace reds::ml {

/// Share of correct hard predictions (probabilities thresholded at 0.5,
/// targets at 0.5).
double Accuracy(const std::vector<double>& prob, const std::vector<double>& y);

/// Mean binary cross-entropy; probabilities are clipped to [1e-12, 1-1e-12].
double LogLoss(const std::vector<double>& prob, const std::vector<double>& y);

/// Mean squared error of probabilities against targets.
double BrierScore(const std::vector<double>& prob, const std::vector<double>& y);

/// Area under the ROC curve (rank statistic; ties get half credit).
/// Returns 0.5 when one class is absent.
double RocAuc(const std::vector<double>& score, const std::vector<double>& y);

}  // namespace reds::ml

#endif  // REDS_ML_METRICS_H_
