// Histogram split search support for the tree learners (feature binning a
// la LightGBM). A node's per-feature histogram accumulates gradient (or
// target) sums and counts per BinnedIndex bin with one contiguous uint8_t
// scan; split candidates are then evaluated between consecutive non-empty
// bins in O(bins) instead of O(n) exact values, and one child per split is
// derived by parent-minus-sibling subtraction instead of a rescan. The
// SplitBackend enum selects between the reference sort-per-node search, the
// PR 2 presorted-order search, and this histogram search in every tree
// config (CartParams/GbtParams/RfParams equivalents).
#ifndef REDS_ML_HISTOGRAM_H_
#define REDS_ML_HISTOGRAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/binned_index.h"

namespace reds::ml {

/// Which split-search kernel a tree learner runs.
///   kExact:     sort-per-node reference (the seed implementation).
///   kPresorted: per-feature sorted orders partitioned down the tree (PR 2).
///   kHistogram: binned gradient histograms over a BinnedIndex (this PR).
/// Exact and presorted produce bit-identical trees. Histogram trees
/// evaluate the same candidate set with the same thresholds whenever every
/// feature has at most BinnedIndex::kMaxBins distinct values -- and are
/// then bit-identical for {0,1} targets (integer-exact sums) or for
/// all-distinct values (one row per bin); fractional targets with ties may
/// differ in final ulps because bin sums accumulate in row order rather
/// than value order. Beyond the bin budget the histogram backend is a
/// bounded-quality approximation.
enum class SplitBackend { kExact, kPresorted, kHistogram };

/// Returns "exact"/"presorted"/"histogram".
const char* SplitBackendName(SplitBackend backend);

/// One histogram bin: gradient-like and hessian-like sums plus a count.
/// CART uses g = sum of targets (h unused); GBT uses g/h = gradient and
/// hessian sums.
struct HistBin {
  double g = 0.0;
  double h = 0.0;
  int count = 0;
};

/// Accumulates the g-sums and counts of `ids` (positions or row ids,
/// whatever `codes`/`g` are indexed by) into `bins`. The loop is unrolled
/// four rows deep with all gathers (two dependent loads per row: id, then
/// code/gradient) issued before any bin is bumped, so the loads of the next
/// rows pipeline instead of stalling behind the previous row's
/// read-modify-write; the bumps stay in row order, so the per-bin sums are
/// bit-identical to the scalar loop's. Rows sharing a bin within one
/// unrolled group are handled correctly: each bump is a separate
/// load-modify-store in program order.
inline void AccumulateHistogram(const uint8_t* codes, const int* ids, int n,
                                const double* g, HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const double g0 = g[id0], g1 = g[id1], g2 = g[id2], g3 = g[id3];
    bins[c0].g += g0;
    ++bins[c0].count;
    bins[c1].g += g1;
    ++bins[c1].count;
    bins[c2].g += g2;
    ++bins[c2].count;
    bins[c3].g += g3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    ++bin.count;
  }
}

/// As above with hessian sums (the GBT variant), same 4-row unrolled
/// gather.
inline void AccumulateHistogram(const uint8_t* codes, const int* ids, int n,
                                const double* g, const double* h,
                                HistBin* bins) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const int id0 = ids[i], id1 = ids[i + 1], id2 = ids[i + 2],
              id3 = ids[i + 3];
    const uint8_t c0 = codes[id0], c1 = codes[id1], c2 = codes[id2],
                  c3 = codes[id3];
    const double g0 = g[id0], g1 = g[id1], g2 = g[id2], g3 = g[id3];
    const double h0 = h[id0], h1 = h[id1], h2 = h[id2], h3 = h[id3];
    bins[c0].g += g0;
    bins[c0].h += h0;
    ++bins[c0].count;
    bins[c1].g += g1;
    bins[c1].h += h1;
    ++bins[c1].count;
    bins[c2].g += g2;
    bins[c2].h += h2;
    ++bins[c2].count;
    bins[c3].g += g3;
    bins[c3].h += h3;
    ++bins[c3].count;
  }
  for (; i < n; ++i) {
    const int id = ids[i];
    HistBin& bin = bins[codes[id]];
    bin.g += g[id];
    bin.h += h[id];
    ++bin.count;
  }
}

/// The plain scalar loops, kept as the equivalence/benchmark reference for
/// the unrolled kernels above (tests assert bit-identical bins;
/// bench_perf_kernels reports the measured speedup).
void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, HistBin* bins);
void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, const double* h,
                                  HistBin* bins);

/// out[b] = parent[b] - child[b]. `out` may alias `parent` (the common
/// in-place use: the parent's buffer becomes the larger child's).
void SubtractHistogram(const HistBin* parent, const HistBin* child,
                       HistBin* out, int num_bins);

/// Reusable node-histogram buffers for the parent-minus-sibling recursion:
/// at any moment one buffer per level of the active root-to-node path is
/// live, so buffers are recycled through a free list instead of allocated
/// per node. All buffers share one size (features x max_bins).
class HistogramPool {
 public:
  explicit HistogramPool(size_t buffer_size) : buffer_size_(buffer_size) {}

  /// A buffer of buffer_size() bins with unspecified contents: callers
  /// zero exactly the per-feature slots they accumulate into (each
  /// feature's live prefix is its num_bins, not the uniform stride), so
  /// sparse candidate sets don't pay a full-buffer clear.
  std::vector<HistBin> Acquire();

  /// Returns a buffer to the free list (contents irrelevant).
  void Release(std::vector<HistBin> buffer);

  size_t buffer_size() const { return buffer_size_; }

 private:
  size_t buffer_size_;
  std::vector<std::vector<HistBin>> free_;
};

}  // namespace reds::ml

#endif  // REDS_ML_HISTOGRAM_H_
