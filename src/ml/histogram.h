// Histogram split search support for the tree learners (feature binning a
// la LightGBM). A node's per-feature histogram accumulates gradient (or
// target) sums and counts per BinnedIndex bin with one contiguous uint8_t
// scan; split candidates are then evaluated between consecutive non-empty
// bins in O(bins) instead of O(n) exact values, and one child per split is
// derived by parent-minus-sibling subtraction instead of a rescan. The
// SplitBackend enum selects between the reference sort-per-node search, the
// PR 2 presorted-order search, and this histogram search in every tree
// config (CartParams/GbtParams/RfParams equivalents).
#ifndef REDS_ML_HISTOGRAM_H_
#define REDS_ML_HISTOGRAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/binned_index.h"
#include "util/serialize.h"
#include "util/simd.h"

namespace reds::ml {

/// Which split-search kernel a tree learner runs.
///   kExact:     sort-per-node reference (the seed implementation).
///   kPresorted: per-feature sorted orders partitioned down the tree (PR 2).
///   kHistogram: binned gradient histograms over a BinnedIndex (this PR).
/// Exact and presorted produce bit-identical trees. Histogram trees
/// evaluate the same candidate set with the same thresholds whenever every
/// feature has at most BinnedIndex::kMaxBins distinct values -- and are
/// then bit-identical for {0,1} targets (integer-exact sums) or for
/// all-distinct values (one row per bin); fractional targets with ties may
/// differ in final ulps because bin sums accumulate in row order rather
/// than value order. Beyond the bin budget the histogram backend is a
/// bounded-quality approximation.
enum class SplitBackend { kExact, kPresorted, kHistogram };

/// Returns "exact"/"presorted"/"histogram".
const char* SplitBackendName(SplitBackend backend);

/// How a tree expands its frontier.
///   kDepthWise: recursive expansion, every node split until the depth /
///               size stops fire (the reference order; all backends).
///   kLeafWise:  best-first expansion a la LightGBM -- a max-gain priority
///               queue over the open leaves, so under a `max_leaves` cap
///               the tree spends its leaf budget where the gain is, which
///               reaches a given training loss with far fewer nodes than
///               depth-wise at the same cap. Histogram backend only (the
///               other backends silently grow depth-wise); with no cap and
///               the same stopping rules it expands exactly the nodes
///               depth-wise expands, in a different order, so the resulting
///               tree *function* is identical whenever split gains are
///               untied (asserted by the equivalence tests).
enum class GrowthPolicy { kDepthWise, kLeafWise };

/// Returns "depthwise"/"leafwise".
const char* GrowthPolicyName(GrowthPolicy growth);

/// One histogram bin: gradient-like and hessian-like sums plus a count.
/// CART uses g = sum of targets (h unused); GBT uses g/h = gradient and
/// hessian sums.
struct HistBin {
  double g = 0.0;
  double h = 0.0;
  int count = 0;
};

/// Accumulates the g-sums and counts of `ids` (positions or row ids,
/// whatever `codes`/`g` are indexed by) into `bins`. Dispatched on
/// util::ActiveSimdLevel(): the scalar path is the 4-row unrolled gather
/// (all loads issued before any bin is bumped so rows pipeline); the AVX2
/// path adds software prefetch of the gradient and code streams. Bin bumps
/// always stay in row order, so every path is bit-identical to
/// AccumulateHistogramReference. Rows sharing a bin within one unrolled
/// group are handled correctly: each bump is a separate load-modify-store
/// in program order.
void AccumulateHistogram(const uint8_t* codes, const int* ids, int n,
                         const double* g, HistBin* bins);

/// As above with hessian sums (the GBT variant). The AVX2 path fuses each
/// bin's g/h update into one 128-bit add (independent lanes, so still
/// bit-identical) and prefetches both gradient streams.
void AccumulateHistogram(const uint8_t* codes, const int* ids, int n,
                         const double* g, const double* h, HistBin* bins);

/// The g+h variant on a packed pair layout: gh[2*id] = g, gh[2*id+1] = h.
/// One random cache line per row instead of two, which is what lets the
/// AVX2 path clear 2x over the scalar reference at node sizes that spill
/// L1/L2 -- the hot GBT path packs once per boosting round (see
/// PackGradientPairs) and runs every node/feature accumulation on the
/// pairs. Bit-identical to AccumulateHistogramReference on the unpacked
/// arrays.
void AccumulateHistogramPairs(const uint8_t* codes, const int* ids, int n,
                              const double* gh, HistBin* bins);

/// Interleaves g/h into `out` (resized to 2n doubles; hugepage-advised when
/// large, see util::PackedDoubleBuffer). The pack is O(n) sequential and is
/// amortized over the depth x features accumulation passes of one round.
void PackGradientPairs(const double* g, const double* h, int n,
                       util::PackedDoubleBuffer* out);

/// Quantized-gradient histogram bin: int64 sums of int16-quantized g/h.
/// int64 because int32 overflows at realistic node sizes (1e5 rows x 32767
/// quantized magnitude ~ 3.3e9 > 2^31). Integer sums are associative, so
/// every dispatch path of the Q16 kernel produces exactly equal bins.
struct HistBinQ16 {
  int64_t g = 0;
  int64_t h = 0;
  int32_t count = 0;
};

/// Quantizes g/h to int16 pairs packed as gh16[2*i] = q(g[i]),
/// gh16[2*i+1] = q(h[i]) with one shared symmetric scale per array:
/// q(v) = round(v / scale), scale = max(|g|,|h|) / 32767 (1.0 when the
/// inputs are all zero). Returns the scale; dequantize sums as
/// bin.g * scale. 4 bytes per row makes the random gradient stream 4x
/// denser per cache line than the double pair layout.
double QuantizeGradientPairs(const double* g, const double* h, int n,
                             int16_t* gh16);

/// Accumulates quantized pair sums + counts per bin, dispatched like the
/// double kernels. Exactly equal (not just bit-close) to the reference on
/// every path: integer addition is associative.
void AccumulateHistogramQ16(const uint8_t* codes, const int* ids, int n,
                            const int16_t* gh16, HistBinQ16* bins);
void AccumulateHistogramQ16Reference(const uint8_t* codes, const int* ids,
                                     int n, const int16_t* gh16,
                                     HistBinQ16* bins);

/// The plain scalar loops, kept as the equivalence/benchmark reference for
/// the unrolled kernels above (tests assert bit-identical bins;
/// bench_perf_kernels reports the measured speedup).
void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, HistBin* bins);
void AccumulateHistogramReference(const uint8_t* codes, const int* ids, int n,
                                  const double* g, const double* h,
                                  HistBin* bins);

/// out[b] = parent[b] - child[b]. `out` may alias `parent` (the common
/// in-place use: the parent's buffer becomes the larger child's).
void SubtractHistogram(const HistBin* parent, const HistBin* child,
                       HistBin* out, int num_bins);

/// out[b] += other[b]: folds one shard's node histogram into the
/// fleet-level sum. Bin-wise double/int addition -- commutative on counts,
/// and exact (order-independent) on g/h whenever the per-row values are
/// integers, e.g. REDS {0,1} relabel targets; the basis of the sharded
/// tree fit's equivalence claim.
void MergeHistogram(HistBin* out, const HistBin* other, int num_bins);

/// Wire helpers for shipping one feature's bins through util/serialize
/// (shard transport). Exact byte round-trip of g/h/count.
void SerializeHistogram(const HistBin* bins, int num_bins,
                        util::ByteWriter* out);
bool DeserializeHistogram(util::ByteReader* in, HistBin* bins, int num_bins);

/// One feature's best histogram split, as found by ScanHistogramSplits.
/// Field semantics match cart.cc's SplitCandidate: feature < 0 means no
/// positive-gain candidate passed the min_samples_leaf filter.
struct HistogramSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  int left_count = 0;
  int boundary_bin = -1;  // last bin of the left side
};

/// The histogram split scan shared by RegressionTree's histogram backend
/// and the shard coordinator's distributed fit: candidates between
/// consecutive non-empty bins, SSE-reduction gain, midpoint thresholds
/// from the bin bounds callables (so a BinnedIndex or a shard-global bin
/// layout plug in alike). Seeded with `floor` as the gain to beat so a
/// multi-feature caller chains scans: pass the running best's gain and
/// keep the returned candidate only when feature >= 0.
template <typename BinFirstFn, typename BinLastFn>
HistogramSplit ScanHistogramSplits(const HistBin* hb, int num_bins,
                                   int feature, double sum, int n,
                                   int min_samples_leaf, double floor_gain,
                                   BinFirstFn bin_first, BinLastFn bin_last) {
  HistogramSplit cand;
  cand.gain = floor_gain;
  double left_sum = 0.0;
  int left_count = 0;
  int prev = -1;  // last non-empty bin folded into the left side
  for (int b = 0; b < num_bins; ++b) {
    if (hb[b].count == 0) continue;
    if (prev >= 0) {
      const int nl = left_count;
      const int nr = n - nl;
      if (nl >= min_samples_leaf && nr >= min_samples_leaf) {
        const double right_sum = sum - left_sum;
        const double gain = left_sum * left_sum / nl +
                            right_sum * right_sum / nr - sum * sum / n;
        if (gain > cand.gain) {
          cand.feature = feature;
          // Midpoint between the adjacent non-empty bins, matching the
          // exact search's between-distinct-values threshold when bins
          // are single values.
          cand.threshold = 0.5 * (bin_last(prev) + bin_first(b));
          cand.gain = gain;
          cand.left_count = nl;
          cand.boundary_bin = prev;
        }
      }
    }
    left_sum += hb[b].g;
    left_count += hb[b].count;
    prev = b;
  }
  return cand;
}

/// Reusable node-histogram buffers for the parent-minus-sibling recursion:
/// at any moment one buffer per level of the active root-to-node path is
/// live, so buffers are recycled through a free list instead of allocated
/// per node. All buffers share one size (features x max_bins).
class HistogramPool {
 public:
  explicit HistogramPool(size_t buffer_size) : buffer_size_(buffer_size) {}

  /// A buffer of buffer_size() bins with unspecified contents: callers
  /// zero exactly the per-feature slots they accumulate into (each
  /// feature's live prefix is its num_bins, not the uniform stride), so
  /// sparse candidate sets don't pay a full-buffer clear.
  std::vector<HistBin> Acquire();

  /// Returns a buffer to the free list (contents irrelevant).
  void Release(std::vector<HistBin> buffer);

  size_t buffer_size() const { return buffer_size_; }

 private:
  size_t buffer_size_;
  std::vector<std::vector<HistBin>> free_;
};

}  // namespace reds::ml

#endif  // REDS_ML_HISTOGRAM_H_
