// Random forest (Breiman 2001): bagged fully-grown CART trees with per-split
// feature subsampling. PredictProb averages leaf means, approximating
// P(y=1|x) -- exactly what REDS's "RPf"/"RPfp" variants need.
#ifndef REDS_ML_RANDOM_FOREST_H_
#define REDS_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/cart.h"
#include "ml/model.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds::ml {

struct RandomForestConfig {
  int num_trees = 200;
  int mtry = -1;             // -1: floor(sqrt(M)), the classification default
  int min_samples_leaf = 1;  // fully grown trees, as in Breiman's classifier
  int max_depth = -1;
  double sample_fraction = 1.0;  // bootstrap sample size as share of N
  SplitBackend backend = SplitBackend::kPresorted;
  int fit_threads = 1;       // trees fit in parallel when > 1 (each tree has
                             // its own seed stream, so results are identical)
  // Per-tree frontier order; histogram backend only (see ml/cart.h).
  GrowthPolicy growth = GrowthPolicy::kDepthWise;
  int max_leaves = 0;        // leaf-wise cap per tree; 0 = unlimited
};

class RandomForest : public Metamodel {
 public:
  explicit RandomForest(RandomForestConfig config = {}) : config_(config) {}

  void Fit(const Dataset& d, uint64_t seed) override;

  /// As Fit, reusing prebuilt indexes of d (e.g. the discovery engine's
  /// shared per-dataset caches); all trees derive their presorted feature
  /// orders from `index` by counting instead of sorting, or share the
  /// `binned` quantization under the histogram backend.
  void Fit(const Dataset& d, uint64_t seed, const ColumnIndex* index,
           const BinnedIndex* binned = nullptr) override;

  /// Subset fit on views: bootstrap draws map into `rows`, and every tree
  /// derives its orders/codes from the full-data indexes (the same
  /// mechanism ordinary bootstrap fits already use), so no fold dataset or
  /// fold index is ever materialized. Trees are bit-identical to the
  /// materializing default where the backend index is exact (presorted
  /// always; histogram in the exact-pack regime). In-bag counts are
  /// recorded at full-data row ids, so OOB accessors pair with `d`, not
  /// the subset. Falls back to the default when the index is missing.
  void FitOnRows(const Dataset& d, const std::vector<int>& rows,
                 uint64_t seed, const ColumnIndex* index,
                 const BinnedIndex* binned) override;

  double PredictProb(const double* x) const override;
  int num_features() const override { return num_features_; }

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const RandomForestConfig& config() const { return config_; }

  /// Out-of-bag probability estimates for the training rows: row i is
  /// averaged over the trees whose bootstrap sample missed i. Rows that were
  /// in every bag get the full-forest prediction. `d` must be the training
  /// dataset passed to Fit; when the recorded bag counts don't match `d`
  /// (wrong dataset, cache-loaded model paired with other data) every row
  /// falls back to the full-forest prediction.
  std::vector<double> OobPredictions(const Dataset& d) const;

  /// Out-of-bag misclassification rate (targets binarized at 0.5). NaN
  /// when the bag counts don't match `d` -- a full-forest fallback here
  /// would masquerade as an (optimistic) OOB estimate.
  double OobError(const Dataset& d) const;

  /// Permutation importance: mean increase in out-of-bag misclassification
  /// when feature j's values are shuffled. One entry per feature; higher
  /// means more important. `seed` drives the permutations.
  std::vector<double> PermutationImportance(const Dataset& d,
                                            uint64_t seed) const;

  /// Appends the fitted forest (trees + in-bag counts, so the OOB metrics
  /// survive a reload) to `out` in the stable little-endian cache layout.
  void SerializeTo(util::ByteWriter* out) const;

  /// Restores a forest written by SerializeTo.
  Status DeserializeFrom(util::ByteReader* in);

 private:
  /// True when the recorded bag counts line up with `d` (one count per
  /// training row per tree) -- the single validity rule behind every OOB
  /// accessor.
  bool OobStateMatches(const Dataset& d) const;

  /// The per-tree config derived from config_ for a dataset with
  /// `num_cols` features (mtry default = floor(sqrt(M))).
  TreeConfig MakeTreeConfig(int num_cols) const;

  RandomForestConfig config_;
  std::vector<RegressionTree> trees_;
  std::vector<std::vector<int>> in_bag_counts_;  // per tree, per training row
  int num_features_ = 0;
};

}  // namespace reds::ml

#endif  // REDS_ML_RANDOM_FOREST_H_
