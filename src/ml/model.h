// Metamodel interface: the intermediate machine-learning model REDS fits on
// the N simulation results and then uses to label L >> N fresh points
// (paper Algorithm 4, lines 2 and 5).
#ifndef REDS_ML_MODEL_H_
#define REDS_ML_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"

namespace reds {
class ColumnIndex;
class BinnedIndex;
}  // namespace reds

namespace reds::ml {

/// Metamodel families used in the paper ("f", "x", "s" suffixes).
enum class MetamodelKind {
  kRandomForest,  // "f"
  kGbt,           // "x" (XGBoost-style gradient boosted trees)
  kSvm,           // "s" (RBF-kernel SVM)
};

/// Returns "f"/"x"/"s", matching the paper's method-name suffixes.
std::string MetamodelSuffix(MetamodelKind kind);

/// Trained probabilistic binary classifier over [0,1]^M inputs.
class Metamodel {
 public:
  virtual ~Metamodel() = default;

  /// Fits the model on d (targets may be fractional; they are binarized at
  /// 0.5 where the learner needs hard labels).
  virtual void Fit(const Dataset& d, uint64_t seed) = 0;

  /// As Fit, optionally reusing prebuilt per-dataset indexes (e.g. the
  /// engine's or a CV loop's shared views of d): tree learners feed them
  /// to the presorted/histogram split search; families without columnar
  /// kernels ignore them. Results are identical either way.
  virtual void Fit(const Dataset& d, uint64_t seed,
                   const ColumnIndex* index,
                   const BinnedIndex* binned = nullptr) {
    (void)index;
    (void)binned;
    Fit(d, seed);
  }

  /// Fits on the given row subset of d. The default materializes the
  /// subset (d.SubsetRows) and runs the plain Fit; learners with columnar
  /// kernels override it to train on *views* through the full-data indexes
  /// instead, which is what keeps k-fold tuning at O(1 fold) extra
  /// residency (see ml/tuning.h). `rows` must be non-empty and ascending
  /// (fold row lists are); overrides rely on that to renumber positions
  /// order-preservingly so their result matches this default bit for bit
  /// where the backend index is exact.
  virtual void FitOnRows(const Dataset& d, const std::vector<int>& rows,
                         uint64_t seed, const ColumnIndex* index,
                         const BinnedIndex* binned) {
    (void)index;
    (void)binned;
    Fit(d.SubsetRows(rows), seed);
  }

  /// Estimated P(y = 1 | x); always in [0, 1]. `x` holds num_features()
  /// doubles.
  virtual double PredictProb(const double* x) const = 0;

  /// Number of input features the model was fit on.
  virtual int num_features() const = 0;

  /// Hard label: PredictProb(x) > 0.5 (the paper's `bnd`, expressed on the
  /// probability scale for every model family).
  double PredictLabel(const double* x) const {
    return PredictProb(x) > 0.5 ? 1.0 : 0.0;
  }
};

}  // namespace reds::ml

#endif  // REDS_ML_MODEL_H_
