#include "ml/random_forest.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "util/thread_pool.h"

namespace reds::ml {

std::string MetamodelSuffix(MetamodelKind kind) {
  switch (kind) {
    case MetamodelKind::kRandomForest:
      return "f";
    case MetamodelKind::kGbt:
      return "x";
    case MetamodelKind::kSvm:
      return "s";
  }
  return "?";
}

void RandomForest::Fit(const Dataset& d, uint64_t seed) {
  Fit(d, seed, nullptr, nullptr);
}

TreeConfig RandomForest::MakeTreeConfig(int num_cols) const {
  TreeConfig tree_config;
  tree_config.mtry = config_.mtry > 0
                         ? config_.mtry
                         : std::max(1, static_cast<int>(std::sqrt(
                                           static_cast<double>(num_cols))));
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.min_samples_split = std::max(2, 2 * config_.min_samples_leaf);
  tree_config.max_depth = config_.max_depth;
  tree_config.backend = config_.backend;
  tree_config.growth = config_.growth;
  tree_config.max_leaves = config_.max_leaves;
  return tree_config;
}

void RandomForest::Fit(const Dataset& d, uint64_t seed,
                       const ColumnIndex* index, const BinnedIndex* binned) {
  assert(d.num_rows() > 0);
  num_features_ = d.num_cols();
  const TreeConfig tree_config = MakeTreeConfig(d.num_cols());

  // One columnar index (and, for the histogram backend, one quantization)
  // serves every tree; each derives its bootstrap sample's views from the
  // shared structures instead of rebuilding them.
  std::shared_ptr<const ColumnIndex> owned;
  if (config_.backend != SplitBackend::kExact && index == nullptr) {
    owned = ColumnIndex::Build(d);
    index = owned.get();
  }
  std::shared_ptr<const BinnedIndex> owned_binned;
  if (config_.backend == SplitBackend::kHistogram && binned == nullptr) {
    owned_binned = BinnedIndex::Build(*index);
    binned = owned_binned.get();
  }
  if (config_.backend == SplitBackend::kExact) {
    index = nullptr;
    binned = nullptr;
  }

  const int bag_size = std::max(
      1, static_cast<int>(std::lround(config_.sample_fraction * d.num_rows())));

  trees_.assign(static_cast<size_t>(config_.num_trees), RegressionTree());
  in_bag_counts_.assign(static_cast<size_t>(config_.num_trees),
                        std::vector<int>(static_cast<size_t>(d.num_rows()), 0));
  auto fit_tree = [&](int t) {
    Rng rng(DeriveSeed(seed, static_cast<uint64_t>(t)));
    std::vector<int> rows(static_cast<size_t>(bag_size));
    for (auto& r : rows) {
      r = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(d.num_rows())));
      in_bag_counts_[static_cast<size_t>(t)][static_cast<size_t>(r)]++;
    }
    trees_[static_cast<size_t>(t)].Fit(d, rows, tree_config, &rng, index,
                                       binned);
  };
  if (config_.fit_threads > 1) {
    // Trees are seeded independently, so the parallel fit is deterministic
    // and identical to the serial one.
    ParallelFor(0, config_.num_trees, fit_tree, config_.fit_threads);
  } else {
    for (int t = 0; t < config_.num_trees; ++t) fit_tree(t);
  }
}

void RandomForest::FitOnRows(const Dataset& d, const std::vector<int>& rows,
                             uint64_t seed, const ColumnIndex* index,
                             const BinnedIndex* binned) {
  const bool have_views =
      (config_.backend == SplitBackend::kPresorted && index != nullptr) ||
      (config_.backend == SplitBackend::kHistogram && index != nullptr &&
       binned != nullptr);
  if (!have_views) {
    Metamodel::FitOnRows(d, rows, seed, index, binned);
    return;
  }
  assert(!rows.empty());
  num_features_ = d.num_cols();
  const TreeConfig tree_config = MakeTreeConfig(d.num_cols());

  // Bootstrap draws index into `rows`, so each bag is a sample of the
  // subset; RegressionTree::Fit already handles arbitrary row lists with
  // duplicates against the shared full-data index (that is how ordinary
  // bootstrap fits work), so no fold dataset or index is materialized.
  // The draw sequence matches the materializing default's draws over the
  // renumbered subset position for position.
  const int n_fit = static_cast<int>(rows.size());
  const int bag_size = std::max(
      1, static_cast<int>(std::lround(config_.sample_fraction * n_fit)));

  trees_.assign(static_cast<size_t>(config_.num_trees), RegressionTree());
  // Bag counts are recorded at full-data row ids so OobStateMatches pairs
  // the fitted model with `d`; out-of-fold rows read as never-in-bag.
  in_bag_counts_.assign(static_cast<size_t>(config_.num_trees),
                        std::vector<int>(static_cast<size_t>(d.num_rows()), 0));
  auto fit_tree = [&](int t) {
    Rng rng(DeriveSeed(seed, static_cast<uint64_t>(t)));
    std::vector<int> bag(static_cast<size_t>(bag_size));
    for (auto& r : bag) {
      r = rows[rng.UniformInt(static_cast<uint64_t>(n_fit))];
      in_bag_counts_[static_cast<size_t>(t)][static_cast<size_t>(r)]++;
    }
    trees_[static_cast<size_t>(t)].Fit(d, bag, tree_config, &rng, index,
                                       binned);
  };
  if (config_.fit_threads > 1) {
    ParallelFor(0, config_.num_trees, fit_tree, config_.fit_threads);
  } else {
    for (int t = 0; t < config_.num_trees; ++t) fit_tree(t);
  }
}

bool RandomForest::OobStateMatches(const Dataset& d) const {
  return in_bag_counts_.size() == trees_.size() && !in_bag_counts_.empty() &&
         in_bag_counts_.front().size() == static_cast<size_t>(d.num_rows());
}

std::vector<double> RandomForest::OobPredictions(const Dataset& d) const {
  assert(!trees_.empty());
  // Hard check (not just an assert): `d` must be the training dataset the
  // bag counts were recorded for. On mismatch -- wrong dataset, or a
  // cache-loaded model paired with other data -- fall back to full-forest
  // predictions instead of indexing past the count vectors.
  if (!OobStateMatches(d)) {
    std::vector<double> out(static_cast<size_t>(d.num_rows()));
    for (int i = 0; i < d.num_rows(); ++i) {
      out[static_cast<size_t>(i)] = PredictProb(d.row(i));
    }
    return out;
  }
  std::vector<double> sum(static_cast<size_t>(d.num_rows()), 0.0);
  std::vector<int> votes(static_cast<size_t>(d.num_rows()), 0);
  for (size_t t = 0; t < trees_.size(); ++t) {
    for (int i = 0; i < d.num_rows(); ++i) {
      if (in_bag_counts_[t][static_cast<size_t>(i)] == 0) {
        sum[static_cast<size_t>(i)] += trees_[t].Predict(d.row(i));
        votes[static_cast<size_t>(i)]++;
      }
    }
  }
  std::vector<double> out(static_cast<size_t>(d.num_rows()));
  for (int i = 0; i < d.num_rows(); ++i) {
    out[static_cast<size_t>(i)] =
        votes[static_cast<size_t>(i)] > 0
            ? sum[static_cast<size_t>(i)] / votes[static_cast<size_t>(i)]
            : PredictProb(d.row(i));
  }
  return out;
}

double RandomForest::OobError(const Dataset& d) const {
  // OobPredictions degrades to full-forest (in-bag) predictions when the
  // bag counts don't match `d`; reporting those as an "OOB" error would be
  // an optimistically biased resubstitution estimate, so make the mismatch
  // visible instead of silently flattering the model.
  if (!OobStateMatches(d)) return std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> prob = OobPredictions(d);
  int wrong = 0;
  for (int i = 0; i < d.num_rows(); ++i) {
    wrong += (prob[static_cast<size_t>(i)] > 0.5) != (d.y(i) > 0.5) ? 1 : 0;
  }
  return static_cast<double>(wrong) / d.num_rows();
}

std::vector<double> RandomForest::PermutationImportance(const Dataset& d,
                                                        uint64_t seed) const {
  // Same hard check as OobPredictions: without matching bag counts there
  // is no out-of-bag signal to permute against, so report zero importance
  // instead of indexing past the count vectors.
  if (!OobStateMatches(d)) {
    return std::vector<double>(static_cast<size_t>(d.num_cols()), 0.0);
  }
  const double baseline = OobError(d);
  std::vector<double> importance(static_cast<size_t>(d.num_cols()), 0.0);
  Rng rng(DeriveSeed(seed, 0x19f0));
  std::vector<double> row(static_cast<size_t>(d.num_cols()));
  for (int j = 0; j < d.num_cols(); ++j) {
    // Shuffled copy of column j.
    std::vector<double> column(static_cast<size_t>(d.num_rows()));
    for (int i = 0; i < d.num_rows(); ++i) column[static_cast<size_t>(i)] = d.x(i, j);
    rng.Shuffle(&column);
    // OOB error with the permuted column.
    std::vector<double> sum(static_cast<size_t>(d.num_rows()), 0.0);
    std::vector<int> votes(static_cast<size_t>(d.num_rows()), 0);
    for (size_t t = 0; t < trees_.size(); ++t) {
      for (int i = 0; i < d.num_rows(); ++i) {
        if (in_bag_counts_[t][static_cast<size_t>(i)] != 0) continue;
        for (int c = 0; c < d.num_cols(); ++c) row[static_cast<size_t>(c)] = d.x(i, c);
        row[static_cast<size_t>(j)] = column[static_cast<size_t>(i)];
        sum[static_cast<size_t>(i)] += trees_[t].Predict(row.data());
        votes[static_cast<size_t>(i)]++;
      }
    }
    int wrong = 0, counted = 0;
    for (int i = 0; i < d.num_rows(); ++i) {
      if (votes[static_cast<size_t>(i)] == 0) continue;
      ++counted;
      const double p = sum[static_cast<size_t>(i)] / votes[static_cast<size_t>(i)];
      wrong += (p > 0.5) != (d.y(i) > 0.5) ? 1 : 0;
    }
    const double permuted_error =
        counted > 0 ? static_cast<double>(wrong) / counted : baseline;
    importance[static_cast<size_t>(j)] = permuted_error - baseline;
  }
  return importance;
}

double RandomForest::PredictProb(const double* x) const {
  assert(!trees_.empty());
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(x);
  const double p = sum / static_cast<double>(trees_.size());
  return std::clamp(p, 0.0, 1.0);
}

void RandomForest::SerializeTo(util::ByteWriter* out) const {
  out->I32(num_features_);
  out->U64(trees_.size());
  for (const RegressionTree& tree : trees_) tree.SerializeTo(out);
  out->U64(in_bag_counts_.size());
  for (const std::vector<int>& counts : in_bag_counts_) out->VecI32(counts);
}

Status RandomForest::DeserializeFrom(util::ByteReader* in) {
  num_features_ = in->I32();
  const uint64_t num_trees = in->U64();
  // Zero trees would make PredictProb average over nothing (NaN); every
  // fitted forest has at least one.
  if (!in->ok() || num_features_ <= 0 || num_trees == 0 ||
      num_trees > in->remaining() / 8) {
    return Status::InvalidArgument("corrupt forest: header");
  }
  trees_.assign(static_cast<size_t>(num_trees), RegressionTree());
  for (RegressionTree& tree : trees_) {
    const Status s = tree.DeserializeFrom(in, num_features_);
    if (!s.ok()) return s;
  }
  const uint64_t num_bags = in->U64();
  if (!in->ok() || num_bags != num_trees) {
    return Status::InvalidArgument("corrupt forest: bag counts");
  }
  in_bag_counts_.assign(static_cast<size_t>(num_bags), {});
  for (std::vector<int>& counts : in_bag_counts_) {
    counts = in->VecI32();
    // Every fitted tree records one count per training row: uniform
    // lengths and non-negative entries, or the payload is hostile.
    if (counts.size() != in_bag_counts_.front().size()) {
      return Status::InvalidArgument("corrupt forest: bag count shape");
    }
    for (int c : counts) {
      if (c < 0) return Status::InvalidArgument("corrupt forest: bag count");
    }
  }
  if (!in->ok()) return Status::InvalidArgument("corrupt forest: truncated");
  return Status::OK();
}

}  // namespace reds::ml
