#include "ml/cart.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <queue>

#include "ml/order_partition.h"
#include "ml/tree_wire.h"
#include "util/thread_pool.h"

namespace reds::ml {

namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  int left_count = 0;
};

}  // namespace

// Presorted fit state. Inputs are gathered once into column-major arrays
// indexed by *position* (0..n) into the fitted row list; order[f] keeps the
// positions of each tree node contiguous and ascending by feature f's value,
// maintained by stable partitioning as the tree splits. pos_of mirrors the
// reference implementation's row array: partitioned unstably with the same
// boolean sequence, it reproduces the reference's permutation, so node sums
// accumulate in the exact same order.
struct RegressionTree::FitContext {
  const TreeConfig* config = nullptr;
  Rng* rng = nullptr;
  int n = 0;
  int num_features = 0;
  std::vector<double> xv;               // xv[f * n + p]: x(rows[p], f)
  std::vector<double> yv;               // yv[p]: y(rows[p])
  std::vector<std::vector<int>> order;  // per feature: positions by value
  std::vector<int> pos_of;              // reference-order view of positions
  std::vector<uint8_t> goes_left;       // per position, scratch
  std::vector<int> scratch;             // partition scratch
  std::unique_ptr<ThreadPool> pool;     // feature-parallel split search
  // Histogram backend only:
  const BinnedIndex* binned = nullptr;
  std::vector<uint8_t> codes;           // codes[f * n + p]: bin of x(rows[p], f)
  int hist_stride = 0;                  // bins reserved per feature slot
  bool subtract = false;                // parent-minus-sibling (off under mtry)
  std::unique_ptr<HistogramPool> hist_pool;
};

void RegressionTree::Fit(const Dataset& d, const std::vector<int>& rows,
                         const TreeConfig& config, Rng* rng,
                         const ColumnIndex* index, const BinnedIndex* binned) {
  nodes_.clear();
  assert(!rows.empty());
  if (config.backend == SplitBackend::kExact) {
    std::vector<int> work(rows);
    BuildReference(d, &work, 0, static_cast<int>(work.size()), 0, config, rng);
    return;
  }

  FitContext ctx;
  ctx.config = &config;
  ctx.rng = rng;
  const int n = static_cast<int>(rows.size());
  ctx.n = n;
  ctx.num_features = d.num_cols();
  ctx.yv.resize(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    ctx.yv[static_cast<size_t>(p)] = d.y(rows[static_cast<size_t>(p)]);
  }
  ctx.xv.resize(static_cast<size_t>(ctx.num_features) * static_cast<size_t>(n));
  for (int f = 0; f < ctx.num_features; ++f) {
    double* col = &ctx.xv[static_cast<size_t>(f) * static_cast<size_t>(n)];
    if (index != nullptr) {
      const std::vector<double>& src = index->column(f);
      for (int p = 0; p < n; ++p) {
        col[p] = src[static_cast<size_t>(rows[static_cast<size_t>(p)])];
      }
    } else {
      for (int p = 0; p < n; ++p) col[p] = d.x(rows[static_cast<size_t>(p)], f);
    }
  }

  if (config.backend == SplitBackend::kHistogram) {
    // Bin codes per position instead of per-feature sorted orders: node
    // histograms are rebuilt (or subtracted) down the tree, so no order
    // arrays need to be partitioned.
    std::shared_ptr<const BinnedIndex> owned_binned;
    if (binned == nullptr) {
      owned_binned = index != nullptr ? BinnedIndex::Build(*index)
                                      : BinnedIndex::Build(d);
      binned = owned_binned.get();
    }
    assert(binned->num_rows() == d.num_rows() &&
           binned->num_cols() == d.num_cols());
    ctx.binned = binned;
    ctx.codes.resize(static_cast<size_t>(ctx.num_features) *
                     static_cast<size_t>(n));
    for (int f = 0; f < ctx.num_features; ++f) {
      uint8_t* col = &ctx.codes[static_cast<size_t>(f) * static_cast<size_t>(n)];
      const ColumnView<uint8_t> src = binned->codes(f);
      for (int p = 0; p < n; ++p) {
        col[p] = src[static_cast<size_t>(rows[static_cast<size_t>(p)])];
      }
    }
    ctx.hist_stride = binned->max_bins();
    ctx.subtract = !(config.mtry > 0 && config.mtry < ctx.num_features);
    ctx.hist_pool = std::make_unique<HistogramPool>(
        static_cast<size_t>(ctx.num_features) *
        static_cast<size_t>(ctx.hist_stride));
    ctx.pos_of.resize(static_cast<size_t>(n));
    std::iota(ctx.pos_of.begin(), ctx.pos_of.end(), 0);
    ctx.goes_left.resize(static_cast<size_t>(n));
    if (config.threads > 1 && ctx.num_features > 1) {
      ctx.pool = std::make_unique<ThreadPool>(config.threads);
    }
    if (config.growth == GrowthPolicy::kLeafWise) {
      BuildHistogramLeafWise(&ctx, 0, n);
    } else {
      BuildHistogram(&ctx, 0, n, 0, {});
    }
    return;
  }

  ctx.order.resize(static_cast<size_t>(ctx.num_features));
  if (index != nullptr) {
    assert(index->num_rows() == d.num_rows() &&
           index->num_cols() == d.num_cols());
    // Derive each feature's position order from the dataset-wide permutation
    // by counting: bucket the fit positions by row id, then emit buckets in
    // permutation order. O(N + n) per feature, no comparison sort; handles
    // bootstrap duplicates naturally (a row's positions emit adjacently).
    std::vector<int> start(static_cast<size_t>(d.num_rows()) + 1, 0);
    for (int p = 0; p < n; ++p) {
      ++start[static_cast<size_t>(rows[static_cast<size_t>(p)]) + 1];
    }
    for (size_t r = 1; r < start.size(); ++r) start[r] += start[r - 1];
    std::vector<int> slots(static_cast<size_t>(n));
    {
      std::vector<int> cursor(start.begin(), start.end() - 1);
      for (int p = 0; p < n; ++p) {
        slots[static_cast<size_t>(
            cursor[static_cast<size_t>(rows[static_cast<size_t>(p)])]++)] = p;
      }
    }
    for (int f = 0; f < ctx.num_features; ++f) {
      std::vector<int>& ord = ctx.order[static_cast<size_t>(f)];
      ord.reserve(static_cast<size_t>(n));
      for (int r : index->sorted_rows(f)) {
        for (int s = start[static_cast<size_t>(r)];
             s < start[static_cast<size_t>(r) + 1]; ++s) {
          ord.push_back(slots[static_cast<size_t>(s)]);
        }
      }
    }
  } else {
    for (int f = 0; f < ctx.num_features; ++f) {
      std::vector<int>& ord = ctx.order[static_cast<size_t>(f)];
      ord.resize(static_cast<size_t>(n));
      std::iota(ord.begin(), ord.end(), 0);
      const double* col =
          &ctx.xv[static_cast<size_t>(f) * static_cast<size_t>(n)];
      // Tie-break by (row id, position) to reproduce the index-derived
      // order exactly: fits must not depend on whether an index was passed
      // (the engine's cached-vs-inline determinism contract).
      std::sort(ord.begin(), ord.end(), [col, &rows](int a, int b) {
        if (col[a] != col[b]) return col[a] < col[b];
        const int ra = rows[static_cast<size_t>(a)];
        const int rb = rows[static_cast<size_t>(b)];
        if (ra != rb) return ra < rb;
        return a < b;
      });
    }
  }

  ctx.pos_of.resize(static_cast<size_t>(n));
  std::iota(ctx.pos_of.begin(), ctx.pos_of.end(), 0);
  ctx.goes_left.resize(static_cast<size_t>(n));
  ctx.scratch.resize(static_cast<size_t>(n));
  if (config.threads > 1 && ctx.num_features > 1) {
    ctx.pool = std::make_unique<ThreadPool>(config.threads);
  }
  Build(&ctx, 0, n, 0);
}

void RegressionTree::Fit(const Dataset& d, const TreeConfig& config, Rng* rng,
                         const ColumnIndex* index, const BinnedIndex* binned) {
  std::vector<int> rows(static_cast<size_t>(d.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  Fit(d, rows, config, rng, index, binned);
}

int RegressionTree::Build(FitContext* ctx, int begin, int end, int depth) {
  const TreeConfig& config = *ctx->config;
  const int n = end - begin;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = begin; i < end; ++i) {
    const double y =
        ctx->yv[static_cast<size_t>(ctx->pos_of[static_cast<size_t>(i)])];
    sum += y;
    sum_sq += y * y;
  }
  const double mean = sum / n;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].value = mean;

  const bool depth_ok = config.max_depth < 0 || depth < config.max_depth;
  const double sse = sum_sq - sum * sum / n;
  if (!depth_ok || n < config.min_samples_split || sse <= config.min_gain) {
    return node_index;
  }

  // Choose candidate features (mtry subsampling for forests).
  const int num_features = ctx->num_features;
  std::vector<int> features;
  if (config.mtry > 0 && config.mtry < num_features) {
    features = ctx->rng->SampleWithoutReplacement(num_features, config.mtry);
  } else {
    features.resize(static_cast<size_t>(num_features));
    std::iota(features.begin(), features.end(), 0);
  }

  auto search_feature = [&](size_t fi) {
    SplitCandidate cand;
    const int f = features[fi];
    const std::vector<int>& ord = ctx->order[static_cast<size_t>(f)];
    const double* col =
        &ctx->xv[static_cast<size_t>(f) * static_cast<size_t>(ctx->n)];
    double left_sum = 0.0;
    for (int i = 0; i + 1 < n; ++i) {
      const int pos = ord[static_cast<size_t>(begin + i)];
      left_sum += ctx->yv[static_cast<size_t>(pos)];
      // A valid split point lies between distinct x values.
      const int next = ord[static_cast<size_t>(begin + i + 1)];
      if (col[pos] == col[next]) continue;
      const int nl = i + 1;
      const int nr = n - nl;
      if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
      const double right_sum = sum - left_sum;
      // SSE reduction = sumL^2/nL + sumR^2/nR - sum^2/n (constant terms drop).
      const double gain =
          left_sum * left_sum / nl + right_sum * right_sum / nr - sum * sum / n;
      if (gain > cand.gain) {
        cand.feature = f;
        cand.threshold = 0.5 * (col[pos] + col[next]);
        cand.gain = gain;
        cand.left_count = nl;
      }
    }
    return cand;
  };

  const SplitCandidate best = BestSplitOverFeatures<SplitCandidate>(
      ctx->pool.get(), features.size(), n, search_feature);

  if (best.feature < 0 || best.gain <= config.min_gain) return node_index;

  // Left/right membership per position, from the gathered column values.
  const double* best_col =
      &ctx->xv[static_cast<size_t>(best.feature) * static_cast<size_t>(ctx->n)];
  int nl = 0;
  for (int i = begin; i < end; ++i) {
    const int pos = ctx->pos_of[static_cast<size_t>(i)];
    const uint8_t left = best_col[pos] <= best.threshold ? 1 : 0;
    ctx->goes_left[static_cast<size_t>(pos)] = left;
    nl += left;
  }
  const int mid = begin + nl;
  // Midpoint thresholds between adjacent doubles can round up to the higher
  // value, putting every row on one side; recursing would never terminate.
  if (mid == begin || mid == end) return node_index;  // degenerate (ties)

  // pos_of partitions unstably with the reference's boolean sequence (so
  // node sums downstream accumulate in the same order); the per-feature
  // order arrays partition stably to stay sorted.
  std::partition(ctx->pos_of.data() + begin, ctx->pos_of.data() + end,
                 [&](int pos) {
                   return ctx->goes_left[static_cast<size_t>(pos)] != 0;
                 });
  StablePartitionOrders(&ctx->order, begin, end, ctx->goes_left,
                        &ctx->scratch);

  const int left = Build(ctx, begin, mid, depth + 1);
  const int right = Build(ctx, mid, end, depth + 1);
  nodes_[static_cast<size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best.threshold;
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

// Histogram split search. The node's per-feature histograms (target sum +
// count per BinnedIndex bin) come from one contiguous uint8_t scan of the
// node's positions -- or, for the larger child, from subtracting the
// sibling's histogram from the parent's. Split candidates are evaluated
// between consecutive non-empty bins; when every bin holds one distinct
// value this enumerates exactly the exact search's candidates with the same
// thresholds, so the fitted tree is bit-identical to the exact/presorted
// backends (integer-exact sums), and a bounded-quality approximation
// otherwise. `hist` is this node's prebuilt histogram buffer; empty means
// build-by-scan.
int RegressionTree::BuildHistogram(FitContext* ctx, int begin, int end,
                                   int depth, std::vector<HistBin> hist) {
  const TreeConfig& config = *ctx->config;
  const int n = end - begin;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = begin; i < end; ++i) {
    const double y =
        ctx->yv[static_cast<size_t>(ctx->pos_of[static_cast<size_t>(i)])];
    sum += y;
    sum_sq += y * y;
  }
  const double mean = sum / n;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].value = mean;

  const bool depth_ok = config.max_depth < 0 || depth < config.max_depth;
  const double sse = sum_sq - sum * sum / n;
  if (!depth_ok || n < config.min_samples_split || sse <= config.min_gain) {
    if (!hist.empty()) ctx->hist_pool->Release(std::move(hist));
    return node_index;
  }

  const int num_features = ctx->num_features;
  std::vector<int> features;
  if (config.mtry > 0 && config.mtry < num_features) {
    features = ctx->rng->SampleWithoutReplacement(num_features, config.mtry);
  } else {
    features.resize(static_cast<size_t>(num_features));
    std::iota(features.begin(), features.end(), 0);
  }

  const size_t stride = static_cast<size_t>(ctx->hist_stride);
  if (hist.empty()) {
    hist = ctx->hist_pool->Acquire();
    const int* ids = ctx->pos_of.data() + begin;
    for (int f : features) {
      HistBin* slot = hist.data() + static_cast<size_t>(f) * stride;
      std::fill_n(slot, ctx->binned->num_bins(f), HistBin{});
      AccumulateHistogram(
          &ctx->codes[static_cast<size_t>(f) * static_cast<size_t>(ctx->n)],
          ids, n, ctx->yv.data(), slot);
    }
  }

  auto search_feature = [&](size_t fi) {
    // The candidate scan lives in ml/histogram.h (ScanHistogramSplits) so
    // the shard coordinator's distributed fit evaluates the exact same
    // candidates over fleet-merged histograms.
    SplitCandidate cand;
    const int f = features[fi];
    const HistBin* hb = hist.data() + static_cast<size_t>(f) * stride;
    const HistogramSplit s = ScanHistogramSplits(
        hb, ctx->binned->num_bins(f), f, sum, n, config.min_samples_leaf, 0.0,
        [&](int b) { return ctx->binned->bin_first(f, b); },
        [&](int b) { return ctx->binned->bin_last(f, b); });
    cand.feature = s.feature;
    cand.threshold = s.threshold;
    cand.gain = s.feature >= 0 ? s.gain : 0.0;
    cand.left_count = s.left_count;
    return cand;
  };

  const SplitCandidate best = BestSplitOverFeatures<SplitCandidate>(
      ctx->pool.get(), features.size(), n, search_feature);

  if (best.feature < 0 || best.gain <= config.min_gain) {
    ctx->hist_pool->Release(std::move(hist));
    return node_index;
  }

  // Partition by value against the recorded threshold (not by bin code), so
  // training membership always matches Predict's descent rule.
  const double* best_col =
      &ctx->xv[static_cast<size_t>(best.feature) * static_cast<size_t>(ctx->n)];
  int nl = 0;
  for (int i = begin; i < end; ++i) {
    const int pos = ctx->pos_of[static_cast<size_t>(i)];
    const uint8_t left = best_col[pos] <= best.threshold ? 1 : 0;
    ctx->goes_left[static_cast<size_t>(pos)] = left;
    nl += left;
  }
  const int mid = begin + nl;
  if (mid == begin || mid == end) {
    ctx->hist_pool->Release(std::move(hist));
    return node_index;  // degenerate (ties)
  }

  std::partition(ctx->pos_of.data() + begin, ctx->pos_of.data() + end,
                 [&](int pos) {
                   return ctx->goes_left[static_cast<size_t>(pos)] != 0;
                 });

  int left, right;
  if (!ctx->subtract) {
    // mtry changes the candidate set per node, so the parent histogram
    // lacks the children's features; rebuild by scan instead.
    ctx->hist_pool->Release(std::move(hist));
    left = BuildHistogram(ctx, begin, mid, depth + 1, {});
    right = BuildHistogram(ctx, mid, end, depth + 1, {});
  } else {
    // Scan only the smaller child; the larger child's histogram is the
    // parent's minus the sibling's, reusing the parent's buffer.
    const bool left_small = mid - begin <= end - mid;
    const int small_begin = left_small ? begin : mid;
    const int small_n = left_small ? mid - begin : end - mid;
    std::vector<HistBin> small = ctx->hist_pool->Acquire();
    const int* ids = ctx->pos_of.data() + small_begin;
    for (int f : features) {
      HistBin* slot = small.data() + static_cast<size_t>(f) * stride;
      std::fill_n(slot, ctx->binned->num_bins(f), HistBin{});
      AccumulateHistogram(
          &ctx->codes[static_cast<size_t>(f) * static_cast<size_t>(ctx->n)],
          ids, small_n, ctx->yv.data(), slot);
    }
    for (int f : features) {
      HistBin* parent = hist.data() + static_cast<size_t>(f) * stride;
      SubtractHistogram(parent,
                        small.data() + static_cast<size_t>(f) * stride,
                        parent, ctx->binned->num_bins(f));
    }
    std::vector<HistBin> left_hist = left_small ? std::move(small)
                                                : std::move(hist);
    std::vector<HistBin> right_hist = left_small ? std::move(hist)
                                                 : std::move(small);
    left = BuildHistogram(ctx, begin, mid, depth + 1, std::move(left_hist));
    right = BuildHistogram(ctx, mid, end, depth + 1, std::move(right_hist));
  }
  nodes_[static_cast<size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best.threshold;
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

// Best-first growth on the histogram backend (see GrowthPolicy in
// ml/histogram.h): open leaves are evaluated at creation and expanded in
// max-gain order from a priority queue, so a max_leaves cap spends the
// budget on the highest-gain frontier. A node's position segment depends
// only on its ancestors' partitions, which precede it in any expansion
// order, so each expanded node computes bit-identical sums, candidates,
// and partitions to the depth-wise recursion; uncapped with untied gains
// the fitted function is identical. Under mtry the parent-minus-sibling
// reuse is off (per-node candidate sets), exactly as in BuildHistogram.
int RegressionTree::BuildHistogramLeafWise(FitContext* ctx, int begin,
                                           int end) {
  const TreeConfig& config = *ctx->config;
  const size_t stride = static_cast<size_t>(ctx->hist_stride);
  const size_t n_total = static_cast<size_t>(ctx->n);

  struct OpenLeaf {
    int node = -1;
    int begin = 0;
    int end = 0;
    int depth = 0;
    double sum = 0.0;
    std::vector<HistBin> hist;  // subtract mode only
    SplitCandidate best;
  };

  auto accumulate = [&](int b, int e, const std::vector<int>& features) {
    std::vector<HistBin> hist = ctx->hist_pool->Acquire();
    const int* ids = ctx->pos_of.data() + b;
    for (int f : features) {
      HistBin* slot = hist.data() + static_cast<size_t>(f) * stride;
      std::fill_n(slot, ctx->binned->num_bins(f), HistBin{});
      AccumulateHistogram(&ctx->codes[static_cast<size_t>(f) * n_total], ids,
                          e - b, ctx->yv.data(), slot);
    }
    return hist;
  };
  // Same candidate scan as BuildHistogram's search_feature.
  auto search = [&](const std::vector<HistBin>& hist,
                    const std::vector<int>& features, double sum, int n) {
    auto search_feature = [&](size_t fi) {
      SplitCandidate cand;
      const int f = features[fi];
      const HistBin* hb = hist.data() + static_cast<size_t>(f) * stride;
      const HistogramSplit s = ScanHistogramSplits(
          hb, ctx->binned->num_bins(f), f, sum, n, config.min_samples_leaf,
          0.0, [&](int b) { return ctx->binned->bin_first(f, b); },
          [&](int b) { return ctx->binned->bin_last(f, b); });
      cand.feature = s.feature;
      cand.threshold = s.threshold;
      cand.gain = s.feature >= 0 ? s.gain : 0.0;
      cand.left_count = s.left_count;
      return cand;
    };
    return BestSplitOverFeatures<SplitCandidate>(ctx->pool.get(),
                                                 features.size(), n,
                                                 search_feature);
  };

  std::vector<OpenLeaf> open;
  // (gain, -slot): ties prefer the earliest-created slot, deterministically.
  std::priority_queue<std::pair<double, int>> queue;

  // Creates the node; when splittable, evaluates its best candidate and
  // enqueues it. In subtract mode the histogram buffer stays with the open
  // leaf (the expansion derives the children from it); under mtry the
  // buffer is released right after the search, as children redraw features.
  auto make_node = [&](int b, int e, int depth,
                       std::vector<HistBin> hist) -> int {
    const int n = e - b;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = b; i < e; ++i) {
      const double y =
          ctx->yv[static_cast<size_t>(ctx->pos_of[static_cast<size_t>(i)])];
      sum += y;
      sum_sq += y * y;
    }
    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[static_cast<size_t>(node_index)].value = sum / n;

    const bool depth_ok = config.max_depth < 0 || depth < config.max_depth;
    const double sse = sum_sq - sum * sum / n;
    if (!depth_ok || n < config.min_samples_split || sse <= config.min_gain) {
      if (!hist.empty()) ctx->hist_pool->Release(std::move(hist));
      return node_index;
    }

    std::vector<int> features;
    if (config.mtry > 0 && config.mtry < ctx->num_features) {
      features =
          ctx->rng->SampleWithoutReplacement(ctx->num_features, config.mtry);
    } else {
      features.resize(static_cast<size_t>(ctx->num_features));
      std::iota(features.begin(), features.end(), 0);
    }
    if (hist.empty()) hist = accumulate(b, e, features);
    const SplitCandidate best = search(hist, features, sum, n);
    if (best.feature < 0 || best.gain <= config.min_gain) {
      ctx->hist_pool->Release(std::move(hist));
      return node_index;
    }
    OpenLeaf leaf;
    leaf.node = node_index;
    leaf.begin = b;
    leaf.end = e;
    leaf.depth = depth;
    leaf.sum = sum;
    leaf.best = best;
    if (ctx->subtract) {
      leaf.hist = std::move(hist);
    } else {
      ctx->hist_pool->Release(std::move(hist));
    }
    const int slot = static_cast<int>(open.size());
    open.push_back(std::move(leaf));
    queue.emplace(open[static_cast<size_t>(slot)].best.gain, -slot);
    return node_index;
  };

  make_node(begin, end, 0, {});
  int num_leaves = 1;
  while (!queue.empty() &&
         (config.max_leaves <= 0 || num_leaves < config.max_leaves)) {
    const int slot = -queue.top().second;
    queue.pop();
    OpenLeaf leaf = std::move(open[static_cast<size_t>(slot)]);

    const double* best_col =
        &ctx->xv[static_cast<size_t>(leaf.best.feature) * n_total];
    int nl = 0;
    for (int i = leaf.begin; i < leaf.end; ++i) {
      const int pos = ctx->pos_of[static_cast<size_t>(i)];
      const uint8_t left = best_col[pos] <= leaf.best.threshold ? 1 : 0;
      ctx->goes_left[static_cast<size_t>(pos)] = left;
      nl += left;
    }
    const int mid = leaf.begin + nl;
    if (mid == leaf.begin || mid == leaf.end) {
      if (!leaf.hist.empty()) ctx->hist_pool->Release(std::move(leaf.hist));
      continue;  // degenerate (ties): the node stays a leaf
    }
    std::partition(ctx->pos_of.data() + leaf.begin,
                   ctx->pos_of.data() + leaf.end, [&](int pos) {
                     return ctx->goes_left[static_cast<size_t>(pos)] != 0;
                   });

    int left_node, right_node;
    if (!ctx->subtract) {
      left_node = make_node(leaf.begin, mid, leaf.depth + 1, {});
      right_node = make_node(mid, leaf.end, leaf.depth + 1, {});
    } else {
      // Scan the smaller child; the larger inherits parent - sibling in the
      // parent's buffer. Candidate features are all features here (subtract
      // mode), so both children's search slots are populated.
      const bool left_small = mid - leaf.begin <= leaf.end - mid;
      const int small_begin = left_small ? leaf.begin : mid;
      const int small_end = left_small ? mid : leaf.end;
      std::vector<int> all(static_cast<size_t>(ctx->num_features));
      std::iota(all.begin(), all.end(), 0);
      std::vector<HistBin> small = accumulate(small_begin, small_end, all);
      for (int f = 0; f < ctx->num_features; ++f) {
        HistBin* parent = leaf.hist.data() + static_cast<size_t>(f) * stride;
        SubtractHistogram(parent,
                          small.data() + static_cast<size_t>(f) * stride,
                          parent, ctx->binned->num_bins(f));
      }
      std::vector<HistBin> left_hist =
          left_small ? std::move(small) : std::move(leaf.hist);
      std::vector<HistBin> right_hist =
          left_small ? std::move(leaf.hist) : std::move(small);
      left_node =
          make_node(leaf.begin, mid, leaf.depth + 1, std::move(left_hist));
      right_node =
          make_node(mid, leaf.end, leaf.depth + 1, std::move(right_hist));
    }
    nodes_[static_cast<size_t>(leaf.node)].feature = leaf.best.feature;
    nodes_[static_cast<size_t>(leaf.node)].threshold = leaf.best.threshold;
    nodes_[static_cast<size_t>(leaf.node)].left = left_node;
    nodes_[static_cast<size_t>(leaf.node)].right = right_node;
    ++num_leaves;
  }
  while (!queue.empty()) {
    const int slot = -queue.top().second;
    queue.pop();
    if (!open[static_cast<size_t>(slot)].hist.empty()) {
      ctx->hist_pool->Release(std::move(open[static_cast<size_t>(slot)].hist));
    }
  }
  return 0;
}

int RegressionTree::BuildReference(const Dataset& d, std::vector<int>* rows,
                                   int begin, int end, int depth,
                                   const TreeConfig& config, Rng* rng) {
  const int n = end - begin;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = begin; i < end; ++i) {
    const double y = d.y((*rows)[static_cast<size_t>(i)]);
    sum += y;
    sum_sq += y * y;
  }
  const double mean = sum / n;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].value = mean;

  const bool depth_ok = config.max_depth < 0 || depth < config.max_depth;
  const double sse = sum_sq - sum * sum / n;
  if (!depth_ok || n < config.min_samples_split || sse <= config.min_gain) {
    return node_index;
  }

  // Choose candidate features (mtry subsampling for forests).
  const int num_features = d.num_cols();
  std::vector<int> features;
  if (config.mtry > 0 && config.mtry < num_features) {
    features = rng->SampleWithoutReplacement(num_features, config.mtry);
  } else {
    features.resize(static_cast<size_t>(num_features));
    std::iota(features.begin(), features.end(), 0);
  }

  SplitCandidate best;
  // (x, row id) like the GBT reference: row-id tie order matches the
  // presorted path's, so both accumulate tied blocks in the same sequence
  // and the fitted trees are bit-identical even for fractional targets.
  std::vector<std::pair<double, int>> vals;
  vals.reserve(static_cast<size_t>(n));
  for (int f : features) {
    vals.clear();
    for (int i = begin; i < end; ++i) {
      const int r = (*rows)[static_cast<size_t>(i)];
      vals.emplace_back(d.x(r, f), r);
    }
    std::sort(vals.begin(), vals.end());
    double left_sum = 0.0;
    for (int i = 0; i + 1 < n; ++i) {
      left_sum += d.y(vals[static_cast<size_t>(i)].second);
      // A valid split point lies between distinct x values.
      if (vals[static_cast<size_t>(i)].first ==
          vals[static_cast<size_t>(i + 1)].first) {
        continue;
      }
      const int nl = i + 1;
      const int nr = n - nl;
      if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
      const double right_sum = sum - left_sum;
      // SSE reduction = sumL^2/nL + sumR^2/nR - sum^2/n (constant terms drop).
      const double gain =
          left_sum * left_sum / nl + right_sum * right_sum / nr - sum * sum / n;
      if (gain > best.gain) {
        best.feature = f;
        best.threshold = 0.5 * (vals[static_cast<size_t>(i)].first +
                                vals[static_cast<size_t>(i + 1)].first);
        best.gain = gain;
        best.left_count = nl;
      }
    }
  }

  if (best.feature < 0 || best.gain <= config.min_gain) return node_index;

  // Partition rows in place: left part <= threshold.
  auto mid_it = std::partition(
      rows->begin() + begin, rows->begin() + end, [&](int r) {
        return d.x(r, best.feature) <= best.threshold;
      });
  const int mid = static_cast<int>(mid_it - rows->begin());
  if (mid == begin || mid == end) return node_index;  // degenerate (ties)

  const int left = BuildReference(d, rows, begin, mid, depth + 1, config, rng);
  const int right = BuildReference(d, rows, mid, end, depth + 1, config, rng);
  nodes_[static_cast<size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best.threshold;
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

double RegressionTree::Predict(const double* x) const {
  assert(fitted());
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

int RegressionTree::num_leaves() const {
  int count = 0;
  for (const Node& nd : nodes_) count += nd.feature < 0 ? 1 : 0;
  return count;
}

int RegressionTree::DepthOf(int node) const {
  const Node& nd = nodes_[static_cast<size_t>(node)];
  if (nd.feature < 0) return 0;
  return 1 + std::max(DepthOf(nd.left), DepthOf(nd.right));
}

int RegressionTree::depth() const { return nodes_.empty() ? 0 : DepthOf(0); }

void RegressionTree::SerializeTo(util::ByteWriter* out) const {
  SerializeTreeNodes(nodes_, &Node::value, out);
}

Status RegressionTree::DeserializeFrom(util::ByteReader* in,
                                       int num_features) {
  return DeserializeTreeNodes(in, num_features, "tree", &Node::value,
                              &nodes_);
}

}  // namespace reds::ml
