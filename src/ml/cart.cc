#include "ml/cart.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace reds::ml {

namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  int left_count = 0;
};

}  // namespace

void RegressionTree::Fit(const Dataset& d, const std::vector<int>& rows,
                         const TreeConfig& config, Rng* rng) {
  nodes_.clear();
  std::vector<int> work(rows);
  assert(!work.empty());
  Build(d, &work, 0, static_cast<int>(work.size()), 0, config, rng);
}

void RegressionTree::Fit(const Dataset& d, const TreeConfig& config, Rng* rng) {
  std::vector<int> rows(static_cast<size_t>(d.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  Fit(d, rows, config, rng);
}

int RegressionTree::Build(const Dataset& d, std::vector<int>* rows, int begin,
                          int end, int depth, const TreeConfig& config,
                          Rng* rng) {
  const int n = end - begin;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = begin; i < end; ++i) {
    const double y = d.y((*rows)[static_cast<size_t>(i)]);
    sum += y;
    sum_sq += y * y;
  }
  const double mean = sum / n;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].value = mean;

  const bool depth_ok = config.max_depth < 0 || depth < config.max_depth;
  const double sse = sum_sq - sum * sum / n;
  if (!depth_ok || n < config.min_samples_split || sse <= config.min_gain) {
    return node_index;
  }

  // Choose candidate features (mtry subsampling for forests).
  const int num_features = d.num_cols();
  std::vector<int> features;
  if (config.mtry > 0 && config.mtry < num_features) {
    features = rng->SampleWithoutReplacement(num_features, config.mtry);
  } else {
    features.resize(static_cast<size_t>(num_features));
    std::iota(features.begin(), features.end(), 0);
  }

  SplitCandidate best;
  std::vector<std::pair<double, double>> vals;  // (x, y) sorted by x
  vals.reserve(static_cast<size_t>(n));
  for (int f : features) {
    vals.clear();
    for (int i = begin; i < end; ++i) {
      const int r = (*rows)[static_cast<size_t>(i)];
      vals.emplace_back(d.x(r, f), d.y(r));
    }
    std::sort(vals.begin(), vals.end());
    double left_sum = 0.0;
    for (int i = 0; i + 1 < n; ++i) {
      left_sum += vals[static_cast<size_t>(i)].second;
      // A valid split point lies between distinct x values.
      if (vals[static_cast<size_t>(i)].first ==
          vals[static_cast<size_t>(i + 1)].first) {
        continue;
      }
      const int nl = i + 1;
      const int nr = n - nl;
      if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
      const double right_sum = sum - left_sum;
      // SSE reduction = sumL^2/nL + sumR^2/nR - sum^2/n (constant terms drop).
      const double gain =
          left_sum * left_sum / nl + right_sum * right_sum / nr - sum * sum / n;
      if (gain > best.gain) {
        best.feature = f;
        best.threshold = 0.5 * (vals[static_cast<size_t>(i)].first +
                                vals[static_cast<size_t>(i + 1)].first);
        best.gain = gain;
        best.left_count = nl;
      }
    }
  }

  if (best.feature < 0 || best.gain <= config.min_gain) return node_index;

  // Partition rows in place: left part <= threshold.
  auto mid_it = std::partition(
      rows->begin() + begin, rows->begin() + end, [&](int r) {
        return d.x(r, best.feature) <= best.threshold;
      });
  const int mid = static_cast<int>(mid_it - rows->begin());
  assert(mid > begin && mid < end);

  const int left = Build(d, rows, begin, mid, depth + 1, config, rng);
  const int right = Build(d, rows, mid, end, depth + 1, config, rng);
  nodes_[static_cast<size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best.threshold;
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

double RegressionTree::Predict(const double* x) const {
  assert(fitted());
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

int RegressionTree::num_leaves() const {
  int count = 0;
  for (const Node& nd : nodes_) count += nd.feature < 0 ? 1 : 0;
  return count;
}

int RegressionTree::DepthOf(int node) const {
  const Node& nd = nodes_[static_cast<size_t>(node)];
  if (nd.feature < 0) return 0;
  return 1 + std::max(DepthOf(nd.left), DepthOf(nd.right));
}

int RegressionTree::depth() const { return nodes_.empty() ? 0 : DepthOf(0); }

}  // namespace reds::ml
