// Shared wire format for flat tree-node arrays: RegressionTree (CART / the
// forest) and GradientBoostedTrees store nodes of the same shape --
// {feature, threshold, left, right} plus one leaf payload double (value
// resp. weight) -- so one helper defines the 28-byte-per-node layout and,
// on the way back in, the hostile-payload validation both loaders must
// agree on: split features in [0, num_features) and strictly-forward
// children (every fit path appends children after their parent), which
// makes Predict provably terminating and in bounds even on checksum-valid
// forged cache files.
#ifndef REDS_ML_TREE_WIRE_H_
#define REDS_ML_TREE_WIRE_H_

#include <string>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace reds::ml {

template <typename Node>
void SerializeTreeNodes(const std::vector<Node>& nodes, double Node::*leaf,
                        util::ByteWriter* out) {
  out->U64(nodes.size());
  for (const Node& nd : nodes) {
    out->I32(nd.feature);
    out->F64(nd.threshold);
    out->I32(nd.left);
    out->I32(nd.right);
    out->F64(nd.*leaf);
  }
}

template <typename Node>
Status DeserializeTreeNodes(util::ByteReader* in, int num_features,
                            const char* what, double Node::*leaf,
                            std::vector<Node>* nodes) {
  const auto corrupt = [what](const char* detail) {
    return Status::InvalidArgument(std::string("corrupt ") + what + ": " +
                                   detail);
  };
  const uint64_t count = in->U64();
  // A node costs 28 bytes on the wire (i32 + f64 + i32 + i32 + f64); an
  // impossible count means a corrupted length, not a huge allocation. A
  // zero count is equally hostile: every fitted tree has at least its
  // root, and Predict unconditionally reads node 0.
  if (!in->ok() || count == 0 || count > in->remaining() / 28) {
    return corrupt("node count");
  }
  nodes->clear();
  nodes->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Node nd;
    nd.feature = in->I32();
    nd.threshold = in->F64();
    nd.left = in->I32();
    nd.right = in->I32();
    nd.*leaf = in->F64();
    nodes->push_back(nd);
  }
  if (!in->ok()) return corrupt("truncated");
  const int n = static_cast<int>(nodes->size());
  for (int i = 0; i < n; ++i) {
    const Node& nd = (*nodes)[static_cast<size_t>(i)];
    if (nd.feature < 0) continue;  // leaf
    if (nd.feature >= num_features) return corrupt("feature index");
    if (nd.left <= i || nd.left >= n || nd.right <= i || nd.right >= n) {
      return corrupt("child index");
    }
  }
  return Status::OK();
}

}  // namespace reds::ml

#endif  // REDS_ML_TREE_WIRE_H_
