// Gradient boosted trees with second-order (Newton) boosting, logistic loss,
// L2 leaf regularization and exact greedy split finding -- the XGBoost
// recipe (Chen & Guestrin 2016) reimplemented from scratch. Backs the "x"
// metamodel variants ("RPx", "RPxp", "RBIcxp", ...).
//
// Split search runs on one of three backends (GbtConfig::backend): the
// reference sort-per-node scan (kExact), presorted per-feature row orders
// derived once per round from a shared ColumnIndex and partitioned down the
// tree (kPresorted, bit-identical to exact), or binned gradient/hessian
// histograms over a shared BinnedIndex (kHistogram: O(bins) scans with
// parent-minus-sibling subtraction, LightGBM-style).
#ifndef REDS_ML_GBT_H_
#define REDS_ML_GBT_H_

#include <vector>

#include "core/binned_index.h"
#include "core/column_index.h"
#include "ml/histogram.h"
#include "ml/model.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds::ml {

struct GbtConfig {
  int num_rounds = 100;
  int max_depth = 4;
  double eta = 0.3;              // shrinkage / learning rate
  double lambda = 1.0;           // L2 regularization on leaf weights
  double gamma = 0.0;            // minimal gain to split
  double min_child_weight = 1.0; // minimal hessian sum per child
  double subsample = 1.0;        // row subsampling per round
  double colsample = 1.0;        // feature subsampling per round
  double base_score = 0.5;       // initial probability
  SplitBackend backend = SplitBackend::kPresorted;
  int threads = 1;               // feature-parallel split search when > 1
  // Frontier order. kLeafWise takes effect on the histogram backend only
  // (the other backends grow depth-wise regardless): a max-gain priority
  // queue over open leaves, bounded by max_leaves when > 0. max_depth still
  // applies. With max_leaves == 0 and untied gains the fitted function is
  // identical to depth-wise (node order differs).
  GrowthPolicy growth = GrowthPolicy::kDepthWise;
  int max_leaves = 0;            // leaf-wise cap per tree; 0 = unlimited
};

class GradientBoostedTrees : public Metamodel {
 public:
  explicit GradientBoostedTrees(GbtConfig config = {}) : config_(config) {}

  void Fit(const Dataset& d, uint64_t seed) override;

  /// As Fit, reusing prebuilt indexes of d (e.g. the discovery engine's
  /// shared per-dataset caches) instead of building them per fit. The
  /// histogram backend uses `binned`; the presorted backend uses `index`.
  void Fit(const Dataset& d, uint64_t seed, const ColumnIndex* index,
           const BinnedIndex* binned = nullptr) override;

  /// Subset fit on *views*: trains on `rows` only, reading values, sorted
  /// orders, and bin codes through the full-data indexes instead of
  /// materializing a row-subset Dataset + private indexes (the CV-fold hot
  /// path). Bit-identical to the materializing default whenever the
  /// backend's index carries exact value order (presorted always; histogram
  /// in the exact-pack regime), because the subset positions are an
  /// order-preserving renumbering of the rows: every RNG draw, accumulation
  /// order, and candidate scan matches the subset fit's. Falls back to the
  /// materializing default when the backend's index is missing.
  void FitOnRows(const Dataset& d, const std::vector<int>& rows,
                 uint64_t seed, const ColumnIndex* index,
                 const BinnedIndex* binned) override;

  double PredictProb(const double* x) const override;
  int num_features() const override { return num_features_; }

  /// Raw additive score before the sigmoid (log-odds scale).
  double PredictMargin(const double* x) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const GbtConfig& config() const { return config_; }

  /// Appends the fitted ensemble (base margin + flat tree arrays) to `out`
  /// in the stable little-endian cache layout; everything PredictProb needs
  /// and nothing else (the fit-time config is not persisted).
  void SerializeTo(util::ByteWriter* out) const;

  /// Restores an ensemble written by SerializeTo, validating node indexes.
  Status DeserializeFrom(util::ByteReader* in);

 private:
  struct Node {
    int feature = -1;        // -1: leaf
    double threshold = 0.0;  // go left iff x[feature] <= threshold
    int left = -1;
    int right = -1;
    double weight = 0.0;     // leaf output (already eta-scaled)
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(const double* x) const;
  };
  struct RoundContext;

  int BuildNode(const Dataset& d, const std::vector<double>& grad,
                const std::vector<double>& hess, std::vector<int>* rows,
                int begin, int end, int depth,
                const std::vector<int>& features, Tree* tree) const;
  int BuildNodeSorted(RoundContext* ctx, int begin, int end, int depth,
                      Tree* tree) const;
  int BuildNodeHistogram(RoundContext* ctx, int begin, int end, int depth,
                         std::vector<HistBin> hist, Tree* tree) const;
  int BuildLeafWise(RoundContext* ctx, int begin, int end, Tree* tree) const;
  void FitImpl(const Dataset& d, const std::vector<int>* fit_rows,
               uint64_t seed, const ColumnIndex* index,
               const BinnedIndex* binned);

  GbtConfig config_;
  std::vector<Tree> trees_;
  double base_margin_ = 0.0;
  int num_features_ = 0;
};

}  // namespace reds::ml

#endif  // REDS_ML_GBT_H_
