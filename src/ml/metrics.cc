#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace reds::ml {

double Accuracy(const std::vector<double>& prob, const std::vector<double>& y) {
  assert(prob.size() == y.size() && !prob.empty());
  int correct = 0;
  for (size_t i = 0; i < prob.size(); ++i) {
    correct += (prob[i] > 0.5) == (y[i] > 0.5) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(prob.size());
}

double LogLoss(const std::vector<double>& prob, const std::vector<double>& y) {
  assert(prob.size() == y.size() && !prob.empty());
  double sum = 0.0;
  for (size_t i = 0; i < prob.size(); ++i) {
    const double p = std::clamp(prob[i], 1e-12, 1.0 - 1e-12);
    sum += -(y[i] * std::log(p) + (1.0 - y[i]) * std::log(1.0 - p));
  }
  return sum / static_cast<double>(prob.size());
}

double BrierScore(const std::vector<double>& prob, const std::vector<double>& y) {
  assert(prob.size() == y.size() && !prob.empty());
  double sum = 0.0;
  for (size_t i = 0; i < prob.size(); ++i) {
    const double diff = prob[i] - y[i];
    sum += diff * diff;
  }
  return sum / static_cast<double>(prob.size());
}

double RocAuc(const std::vector<double>& score, const std::vector<double>& y) {
  assert(score.size() == y.size() && !score.empty());
  std::vector<size_t> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return score[a] < score[b]; });
  // Rank-sum with midranks for ties.
  std::vector<double> rank(score.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && score[order[j + 1]] == score[order[i]]) ++j;
    const double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos = 0.0, rank_sum = 0.0;
  for (size_t k = 0; k < y.size(); ++k) {
    if (y[k] > 0.5) {
      pos += 1.0;
      rank_sum += rank[k];
    }
  }
  const double neg = static_cast<double>(y.size()) - pos;
  if (pos == 0.0 || neg == 0.0) return 0.5;
  return (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

}  // namespace reds::ml
