#include "sampling/design.h"

#include <cassert>

namespace reds::sampling {

std::vector<double> LatinHypercube(int n, int dim, Rng* rng) {
  assert(n > 0 && dim > 0);
  std::vector<double> out(static_cast<size_t>(n) * static_cast<size_t>(dim));
  std::vector<int> perm(static_cast<size_t>(n));
  for (int j = 0; j < dim; ++j) {
    for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    rng->Shuffle(&perm);
    for (int i = 0; i < n; ++i) {
      const double u = rng->Uniform();
      out[static_cast<size_t>(i) * static_cast<size_t>(dim) +
          static_cast<size_t>(j)] =
          (static_cast<double>(perm[static_cast<size_t>(i)]) + u) / n;
    }
  }
  return out;
}

std::vector<double> UniformDesign(int n, int dim, Rng* rng) {
  std::vector<double> out(static_cast<size_t>(n) * static_cast<size_t>(dim));
  for (auto& v : out) v = rng->Uniform();
  return out;
}

double RadicalInverse(int index, int base) {
  double result = 0.0;
  double f = 1.0 / base;
  int i = index;
  while (i > 0) {
    result += f * (i % base);
    i /= base;
    f /= base;
  }
  return result;
}

std::vector<int> FirstPrimes(int n) {
  std::vector<int> primes;
  primes.reserve(static_cast<size_t>(n));
  int candidate = 2;
  while (static_cast<int>(primes.size()) < n) {
    bool is_prime = true;
    for (int p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        is_prime = false;
        break;
      }
    }
    if (is_prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

std::vector<double> HaltonDesign(int n, int dim, int skip) {
  const std::vector<int> primes = FirstPrimes(dim);
  std::vector<double> out(static_cast<size_t>(n) * static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      out[static_cast<size_t>(i) * static_cast<size_t>(dim) +
          static_cast<size_t>(j)] =
          RadicalInverse(i + skip, primes[static_cast<size_t>(j)]);
    }
  }
  return out;
}

std::vector<double> LogitNormalDesign(int n, int dim, double mu, double sigma,
                                      Rng* rng) {
  std::vector<double> out(static_cast<size_t>(n) * static_cast<size_t>(dim));
  for (auto& v : out) v = rng->LogitNormal(mu, sigma);
  return out;
}

namespace {

constexpr double kDiscreteLevels[] = {0.1, 0.3, 0.5, 0.7, 0.9};

double RandomDiscreteLevel(Rng* rng) {
  return kDiscreteLevels[rng->UniformInt(5)];
}

}  // namespace

void DiscretizeEvenColumns(std::vector<double>* design, int dim, Rng* rng) {
  assert(design->size() % static_cast<size_t>(dim) == 0);
  const size_t n = design->size() / static_cast<size_t>(dim);
  for (size_t i = 0; i < n; ++i) {
    for (int j = 1; j < dim; j += 2) {
      (*design)[i * static_cast<size_t>(dim) + static_cast<size_t>(j)] =
          RandomDiscreteLevel(rng);
    }
  }
}

PointSampler MakeUniformSampler() {
  return [](Rng* rng, int dim, double* out) {
    for (int j = 0; j < dim; ++j) out[j] = rng->Uniform();
  };
}

PointSampler MakeLogitNormalSampler(double mu, double sigma) {
  return [mu, sigma](Rng* rng, int dim, double* out) {
    for (int j = 0; j < dim; ++j) out[j] = rng->LogitNormal(mu, sigma);
  };
}

PointSampler MakeMixedSampler() {
  return [](Rng* rng, int dim, double* out) {
    for (int j = 0; j < dim; ++j) {
      out[j] = (j % 2 == 1) ? RandomDiscreteLevel(rng) : rng->Uniform();
    }
  };
}

}  // namespace reds::sampling
