// Designs of experiments over the unit hypercube [0,1)^M: Latin hypercube,
// Halton quasi-random sequences, plain i.i.d. uniform, and the logit-normal
// sampler used in the paper's semi-supervised experiment (Section 9.4).
#ifndef REDS_SAMPLING_DESIGN_H_
#define REDS_SAMPLING_DESIGN_H_

#include <functional>
#include <vector>

#include "util/rng.h"

namespace reds::sampling {

/// A point generator: fills `out` (dim doubles) with one point in [0,1)^M.
/// REDS uses this to draw its L fresh points from the same p(x) as the
/// original design.
using PointSampler = std::function<void(Rng* rng, int dim, double* out)>;

/// n x dim row-major Latin hypercube sample: each column is stratified into
/// n equal bins, one point per bin, random within-bin offsets and random
/// stratum permutations.
std::vector<double> LatinHypercube(int n, int dim, Rng* rng);

/// n x dim i.i.d. uniform sample.
std::vector<double> UniformDesign(int n, int dim, Rng* rng);

/// n x dim Halton sequence (bases = first `dim` primes), starting at `skip`
/// (a burn-in of 20 is customary to drop the degenerate prefix).
std::vector<double> HaltonDesign(int n, int dim, int skip = 20);

/// n x dim i.i.d. logit-normal(mu, sigma) sample; support (0, 1).
std::vector<double> LogitNormalDesign(int n, int dim, double mu, double sigma,
                                      Rng* rng);

/// Radical inverse of `index` in the given base (one Halton coordinate).
double RadicalInverse(int index, int base);

/// First n primes (2, 3, 5, ...).
std::vector<int> FirstPrimes(int n);

/// Replaces every even-indexed column (0-based columns 1, 3, ... matching the
/// paper's "even inputs" a_2, a_4, ...) with i.i.d. draws from
/// {0.1, 0.3, 0.5, 0.7, 0.9}, producing mixed continuous/discrete designs
/// (Section 9.1.2).
void DiscretizeEvenColumns(std::vector<double>* design, int dim, Rng* rng);

/// PointSampler drawing i.i.d. uniform points.
PointSampler MakeUniformSampler();

/// PointSampler drawing i.i.d. logit-normal(mu, sigma) points.
PointSampler MakeLogitNormalSampler(double mu, double sigma);

/// PointSampler matching DiscretizeEvenColumns' mixed distribution.
PointSampler MakeMixedSampler();

}  // namespace reds::sampling

#endif  // REDS_SAMPLING_DESIGN_H_
